"""The durable store: snapshot + WAL tail, with crash recovery.

On-disk layout of one store directory::

    .orpheusdb/
      CURRENT            JSON pointer at the active snapshot directory
      wal.log            CRC-framed logical records since that snapshot
      snapshots/
        snap-00000001/   manifest.json + per-table segment files

:meth:`Store.open` is the recovery path: load the snapshot named by
``CURRENT`` (or start empty), then replay every WAL record with a higher
lsn.  Each mutating OrpheusDB call appends one fsync'd record via the
attached journal, so a crash at any instant loses at most the operation
whose append had not yet returned.  After ``checkpoint_interval`` appends
(or an explicit :meth:`checkpoint`) the store writes a fresh snapshot and
compacts the log.

Commit records are delta-encoded: membership is stored as (records dropped
from the parents, records appended) whenever the staged table preserved the
parents' record order — the common case — so a commit appends O(changed
records) bytes, not O(version) and certainly not O(database).

``Store.open(mode="ro")`` is the concurrent-read path: a shared advisory
lock instead of the writer's exclusive one, recovery that is a pure read
(no truncation, no checkpoint, no append — not one byte on disk changes),
and :meth:`Store.refresh` to catch up with a live writer by replaying only
the WAL tail past the last seen lsn.  The serving layer (:mod:`repro.serve`)
pools such read-only stores behind a version-aware cache.
"""

from __future__ import annotations

import json
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.orpheus import OrpheusDB
from repro.errors import (
    PersistenceError,
    ReadOnlyError,
    RecoveryError,
    ReproError,
    StoreLockedError,
)
from repro.obs import metrics, trace
from repro.storage.schema import TableSchema

from repro.persist.fsutil import atomic_write_bytes, fsync_dir
from repro.persist.injection import crash_point
from repro.persist.snapshot import load_snapshot, write_snapshot
from repro.persist.wal import WriteAheadLog

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

CURRENT_NAME = "CURRENT"
WAL_NAME = "wal.log"
SNAPSHOTS_DIR = "snapshots"
LOCK_NAME = "LOCK"
WRITE_LOCK_NAME = "LOCK.write"
#: A read-only load races the writer's checkpoint pruning (the snapshot it
#: started reading can vanish mid-load); CURRENT has already moved on, so
#: retrying against the fresh pointer converges.
RO_LOAD_RETRIES = 3
#: Snapshot directories retained after a checkpoint.  Recovery only ever
#: uses the one named by CURRENT — the WAL is compacted past older
#: snapshots, so they cannot be rolled forward automatically — but the
#: predecessor is kept for manual salvage if the active snapshot is lost
#: to disk corruption (accepting the loss of the ops after it).
KEEP_SNAPSHOTS = 2

# Pid-aware handles: a pre-fork serve worker charges its own registry.
_RECORDS_REPLAYED = metrics.counter("persist.store.records_replayed")
_RECOVERY_SECONDS = metrics.histogram("persist.store.recovery_seconds")
_REFRESHES = metrics.counter("persist.store.refreshes")
_REFRESH_RECORDS = metrics.counter("persist.store.refresh_records_applied")
_FULL_RELOADS = metrics.counter("persist.store.full_reloads")
_REFRESH_SECONDS = metrics.histogram("persist.store.refresh_seconds")
_CHECKPOINTS = metrics.counter("persist.store.checkpoints")
_CHECKPOINT_SECONDS = metrics.histogram("persist.store.checkpoint_seconds")


@dataclass
class RefreshResult:
    """What one read-only :meth:`Store.refresh` brought in.

    ``full_reload`` means the reader fell behind a checkpoint and rebuilt
    from the active snapshot — per-record classification is unavailable,
    so callers (e.g. the serve cache) must treat every CVD as touched.
    """

    applied: int = 0
    full_reload: bool = False
    last_lsn: int = 0
    touched_cvds: set[str] = field(default_factory=set)
    schema_changed_cvds: set[str] = field(default_factory=set)
    migrated_cvds: set[str] = field(default_factory=set)
    ran_sql: bool = False

    @property
    def changed(self) -> bool:
        return self.full_reload or self.applied > 0


def _classify_record(payload: dict, result: RefreshResult) -> None:
    """Fold one replayed WAL record into a refresh summary (what a serving
    cache needs to invalidate)."""
    op = payload.get("op")
    if op == "commit":
        result.touched_cvds.add(payload["cvd"])
        if payload.get("schema") is not None:
            result.schema_changed_cvds.add(payload["cvd"])
    elif op in ("init", "drop"):
        result.touched_cvds.add(payload["name"])
    elif op == "optimize":
        result.touched_cvds.add(payload["cvd"])
        result.migrated_cvds.add(payload["cvd"])
    elif op == "migration_finish":
        # The physical re-org: versions move between partitions.
        result.touched_cvds.add(payload["cvd"])
        result.migrated_cvds.add(payload["cvd"])
    elif op in ("maintain", "migration_start"):
        result.touched_cvds.add(payload["cvd"])
    elif op == "run":
        # SQL DML names arbitrary durable tables; refresh cannot map it to
        # CVDs, so query caches must invalidate conservatively.
        result.ran_sql = True


class Store:
    """One durable OrpheusDB instance rooted at a directory."""

    def __init__(
        self,
        path: str | Path,
        checkpoint_interval: int = 256,
        checkpoint_bytes: int | None = None,
        mode: str = "rw",
    ):
        if mode not in ("rw", "ro"):
            raise PersistenceError(f"unknown store mode {mode!r} (use 'rw' or 'ro')")
        self.mode = mode
        self.path = Path(path)
        # Negative values would make `records_since >= interval` always
        # true (a full snapshot per record); clamp to "disabled".
        self.checkpoint_interval = max(0, checkpoint_interval)
        #: Also checkpoint once the WAL exceeds this size — record counts
        #: alone let one huge record (a bulk init) be re-replayed on every
        #: open for up to ``checkpoint_interval`` commands.  0 disables;
        #: the default (None) follows checkpoint_interval, so interval=0
        #: means "no automatic checkpoints at all" without every caller
        #: remembering to zero both knobs.
        if checkpoint_bytes is None:
            checkpoint_bytes = (4 * 1024 * 1024 if self.checkpoint_interval else 0)
        self.checkpoint_bytes = max(0, checkpoint_bytes)
        self.wal = WriteAheadLog(self.path / WAL_NAME)
        self.orpheus: OrpheusDB | None = None
        self.recovery_warnings: list[str] = []
        self._next_lsn = 1
        self._records_since_checkpoint = 0
        self._in_checkpoint = False
        self._lock_handles: list = []
        self._loaded_snapshot: str | None = None
        #: Byte offset just past the last WAL frame this store has seen —
        #: lets a read-only refresh resume the scan instead of re-decoding
        #: the whole log on every poll.
        self._wal_offset = 0
        #: The CURRENT snapshot name in force when ``_wal_offset`` was
        #: recorded.  Every checkpoint replaces the log file, so a name
        #: change means the offset belongs to a *previous* file — even
        #: when the new file happens to be byte-for-byte as long.
        self._wal_marker: str | None = None

    @property
    def read_only(self) -> bool:
        return self.mode == "ro"

    # ----------------------------------------------------------------- open

    @classmethod
    def open(
        cls,
        path: str | Path,
        checkpoint_interval: int = 256,
        checkpoint_bytes: int | None = None,
        mode: str = "rw",
    ) -> "Store":
        """Create or recover the store at ``path`` and attach its journal.

        ``mode="ro"`` opens an existing store read-only: it takes a
        *shared* advisory lock (coexisting with one live writer and any
        number of other readers), recovers purely in memory — no torn-tail
        truncation, no checkpoint, no WAL append; not a single byte on
        disk changes — and can later catch up with the writer via
        :meth:`refresh`.
        """
        store = cls(
            path,
            checkpoint_interval=checkpoint_interval,
            checkpoint_bytes=checkpoint_bytes,
            mode=mode,
        )
        store._recover()
        return store

    def _recover(self) -> None:
        if self.path.exists() and not self.path.is_dir():
            raise PersistenceError(
                f"{self.path} is a file, not a store directory (a legacy "
                f"pickle store?)"
            )
        if self.read_only:
            if not self.path.is_dir():
                raise PersistenceError(
                    f"no store directory at {self.path} to open read-only"
                )
            self._acquire_lock()
            try:
                self._load_state_with_retry()
            except BaseException:
                self.wal.close()
                self._release_lock()
                raise
            return
        created = not self.path.exists()
        # exist_ok: a concurrent opener may create the directory between
        # the check and here — let the lock below deliver the clean error.
        self.path.mkdir(parents=True, exist_ok=True)
        if created:
            fsync_dir(self.path.parent)
        (self.path / SNAPSHOTS_DIR).mkdir(exist_ok=True)
        fsync_dir(self.path)
        self._acquire_lock()
        try:
            self._recover_locked()
        except BaseException:
            # A failed recovery (unreadable CURRENT, corrupt snapshot, ...)
            # must not keep the fd and flock alive on a dead Store object:
            # a same-process retry would see its own leaked lock as "in
            # use by another process".
            self.wal.close()
            self._release_lock()
            raise

    def _recover_locked(self) -> None:
        """The writer recovery path, run while holding the store locks."""
        torn_bytes = self.wal.truncate_torn_tail()
        if torn_bytes:
            self.recovery_warnings.append(
                f"dropped {torn_bytes} bytes of torn WAL tail "
                f"(a crash mid-append)"
            )
        replayed = self._load_state()
        self.orpheus.attach_journal(self)
        # A migration whose start was journaled (or snapshotted as pending)
        # but whose finish never made it to disk: the decision is
        # acknowledged state, so roll the plan forward now.
        for cvd_name in self.orpheus.resume_inflight_migrations():
            self.recovery_warnings.append(
                f"rolled forward an interrupted partition migration on "
                f"CVD {cvd_name!r}"
            )
        # A large replayed tail means every future open pays that replay
        # again until something checkpoints — do it now instead.
        if replayed and self._should_auto_checkpoint():
            self.checkpoint()

    def _load_state(self) -> int:
        """Rebuild the in-memory state from CURRENT + the WAL tail.

        A pure read shared by writer recovery and every read-only
        (re)load; returns the number of WAL records replayed.
        """
        started = time.perf_counter()
        snapshot_name = self._read_current()
        if snapshot_name is not None:
            orpheus, snap_lsn = load_snapshot(self.path / SNAPSHOTS_DIR / snapshot_name)
        else:
            orpheus, snap_lsn = OrpheusDB(), 0
        self.orpheus = orpheus
        self._loaded_snapshot = snapshot_name
        self._wal_marker = snapshot_name
        last_lsn = snap_lsn
        replayed = 0
        offset = 0
        orpheus._replaying = True
        try:
            for end, record in self.wal.records_from(0):
                if record.lsn > snap_lsn:
                    if record.lsn != last_lsn + 1:
                        # The records between the snapshot and this frame
                        # were compacted away (a checkpoint racing this
                        # read-only load: CURRENT was read before it moved,
                        # the WAL after).  Applying the survivors would
                        # silently skip acknowledged operations; raising
                        # lets the retry converge on the fresh CURRENT.
                        raise RecoveryError(
                            f"WAL tail jumps from lsn {last_lsn} to "
                            f"{record.lsn} past snapshot "
                            f"{snapshot_name or '<none>'} — compacted "
                            f"past this state (concurrent checkpoint?)"
                        )
                    self._apply(record.payload)
                    last_lsn = record.lsn
                    replayed += 1
                offset = end
        finally:
            orpheus._replaying = False
        self._next_lsn = last_lsn + 1
        self._records_since_checkpoint = replayed
        self._wal_offset = offset
        if self.read_only:
            orpheus.read_only = True
        _RECORDS_REPLAYED.inc(replayed)
        _RECOVERY_SECONDS.observe(time.perf_counter() - started)
        return replayed

    def _load_state_with_retry(self) -> int:
        last_error: RecoveryError | None = None
        for _attempt in range(RO_LOAD_RETRIES):
            try:
                return self._load_state()
            except RecoveryError as exc:
                # A live writer may checkpoint — and prune the snapshot we
                # were reading — mid-load; CURRENT has already moved on, so
                # a retry converges.  Genuine corruption keeps failing and
                # surfaces after the last attempt.
                last_error = exc
        raise last_error

    # -------------------------------------------------------------- refresh

    def refresh(self) -> RefreshResult:
        """Catch a read-only store up with the writer; returns a summary.

        The cheap path replays only WAL frames past the last applied lsn,
        resuming at the remembered byte offset.  When the writer has
        checkpointed past this reader (CURRENT's ``last_lsn`` is ahead, or
        the surviving WAL tail no longer joins contiguously) it falls back
        to a full in-memory reload from the active snapshot.  Like the
        read-only open, it never writes a byte.
        """
        if not self.read_only:
            raise PersistenceError("refresh() is only for mode='ro' stores")
        started = time.perf_counter()
        with trace.span("store.refresh", store=str(self.path)):
            result = self._refresh_inner()
        _REFRESHES.inc()
        _REFRESH_RECORDS.inc(result.applied)
        if result.full_reload:
            _FULL_RELOADS.inc()
        _REFRESH_SECONDS.observe(time.perf_counter() - started)
        return result

    def _refresh_inner(self) -> RefreshResult:
        result = RefreshResult()
        try:
            info = self._read_current_info()
        except RecoveryError:
            # CURRENT mid-replace or corrupt: the WAL tail still serves;
            # a genuinely broken pointer fails the next full reload.
            info = None
        if info is not None:
            pointer_lsn = info.get("last_lsn")
            if pointer_lsn is not None:
                if pointer_lsn > self.last_lsn:
                    return self._full_reload(result)
            elif info["snapshot"] != self._loaded_snapshot:
                # Pre-lsn CURRENT pointer (an older writer): any snapshot
                # switch forces the safe path.
                return self._full_reload(result)
            if info["snapshot"] != self._wal_marker:
                # A checkpoint at or before our lsn replaced the log file,
                # so the remembered offset belongs to the old file (and a
                # regrown file of *exactly* the old length would defeat
                # the size/CRC heuristics below) — rescan from the head.
                self._wal_offset = 0
                self._wal_marker = info["snapshot"]
        offset = self._wal_offset
        if offset > self.wal.size_bytes():
            # The log shrank underneath us (compaction); rescan from the
            # head (lsn filtering keeps already-applied records out).
            offset = 0
        outcome = self._replay_tail(offset, result)
        if outcome == "swapped":
            # A nonzero mid-file offset parsed no frame at all: the log
            # was atomically *replaced* (a checkpoint at exactly our lsn,
            # then regrown past the remembered offset), so the offset is
            # meaningless in the new file — rescan from the head.
            outcome = self._replay_tail(0, result)
        if outcome == "reload":
            return self._full_reload(result)
        result.last_lsn = self.last_lsn
        return result

    def _replay_tail(self, offset: int, result: RefreshResult) -> str:
        """Replay WAL frames past ``offset``/our lsn into the live state.

        Returns ``"ok"``, ``"reload"`` (a gap — frames between our lsn and
        the survivors were compacted away — or divergent replay), or
        ``"swapped"`` (nothing parseable at a nonzero mid-file offset: the
        log file was replaced underneath the remembered offset).
        """
        frames = 0
        orpheus = self.orpheus
        orpheus._replaying = True
        try:
            for end, record in self.wal.records_from(offset):
                frames += 1
                if record.lsn <= self.last_lsn:
                    offset = end
                    continue
                if record.lsn != self.last_lsn + 1:
                    return "reload"
                try:
                    self._apply(record.payload)
                except RecoveryError:
                    return "reload"
                _classify_record(record.payload, result)
                self._next_lsn = record.lsn + 1
                result.applied += 1
                offset = end
                self._wal_offset = offset
        finally:
            orpheus._replaying = False
        if frames == 0 and offset and offset < self.wal.size_bytes():
            return "swapped"
        self._wal_offset = offset
        return "ok"

    def _full_reload(self, result: RefreshResult) -> RefreshResult:
        self._load_state_with_retry()
        result.full_reload = True
        result.last_lsn = self.last_lsn
        return result

    # ----------------------------------------------------------------- lock

    def _acquire_lock(self) -> None:
        """Advisory locks: every opener shares LOCK; writers own LOCK.write.

        Two writers appending to one WAL would write duplicate lsns and one
        side's fsync-acknowledged records would vanish at the other's
        checkpoint compaction — so a second *writer* fails fast on the
        exclusive ``LOCK.write``.  Readers take only a shared lock on
        ``LOCK``, so any number of readers coexist with each other and
        with one live writer; an exclusive lock on ``LOCK`` itself is
        reserved for tools that must exclude every opener.  Locks die with
        the process (crashes never wedge the store).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            return
        handles = []
        try:
            if not self.read_only:
                handles.append(
                    self._flock(
                        self.path / WRITE_LOCK_NAME,
                        fcntl.LOCK_EX,
                        create=True,
                        reason="by another process",
                    )
                )
            shared = self.path / LOCK_NAME
            # Writers may create the marker; a read-only open must not add
            # even an empty directory entry (a pre-writer store without a
            # LOCK file is simply opened unmarked).
            if not self.read_only or shared.exists():
                handles.append(
                    self._flock(
                        shared,
                        fcntl.LOCK_SH,
                        create=not self.read_only,
                        reason="exclusively by another process",
                    )
                )
        except BaseException:
            for handle in handles:
                handle.close()
            raise
        self._lock_handles = handles

    def _flock(self, path: Path, operation: int, create: bool, reason: str):
        handle = open(path, "a+" if create else "r")
        try:
            fcntl.flock(handle.fileno(), operation | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise StoreLockedError(f"store {self.path} is in use {reason}") from None
        return handle

    def _release_lock(self) -> None:
        for handle in self._lock_handles:
            handle.close()  # closing the fd drops the flock
        self._lock_handles = []

    def handle_fork(self) -> None:
        """Make a forked child's store independent of its parent's fds.

        Call once in the child immediately after ``os.fork()``.  Two
        things are shared with the parent at that point and must stop
        being shared:

        - the advisory-lock fds: a flock lives on the *open file
          description*, which fork duplicates into both processes.  The
          child re-acquires locks on fresh fds of its own (so its hold on
          the store tracks its own lifetime), then closes the inherited
          copies — which never releases the parent's locks, because the
          parent's fds keep the original description alive;
        - the WAL append handle: same description means same file offset,
          so two processes appending through it would interleave frames.

        Everything else — the loaded snapshot state — is plain Python
        objects: exactly the copy-on-write sharing the load-once-fork-
        many serve design wants.  Re-acquiring a *writer* store's
        exclusive lock fails by design (the parent still holds it; two
        live writer processes must never coexist): fork read-only stores.
        """
        inherited, self._lock_handles = self._lock_handles, []
        self.wal.handle_fork()
        try:
            self._acquire_lock()
        finally:
            for handle in inherited:
                handle.close()

    # -------------------------------------------------------------- CURRENT

    def _read_current_info(self) -> dict | None:
        current = self.path / CURRENT_NAME
        if not current.exists():
            return None
        try:
            info = json.loads(current.read_text(encoding="utf-8"))
            info["snapshot"]
            return info
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise RecoveryError(f"unreadable CURRENT pointer {current}: {exc}") from exc

    def _read_current(self) -> str | None:
        info = self._read_current_info()
        return None if info is None else info["snapshot"]

    # -------------------------------------------------------------- journal

    def append(self, record: dict) -> None:
        """Journal one logical record (called by OrpheusDB after the
        operation succeeds); fsyncs before returning."""
        if self.read_only:
            # Read-only stores never attach a journal, so this only fires
            # on a caller reaching in directly — refuse rather than corrupt
            # the writer's log.
            raise ReadOnlyError("read-only store cannot append to the WAL")
        if record.get("op") == "commit":
            record = _compact_commit(record)
        self.wal.append(self._next_lsn, record)
        self._next_lsn += 1
        self._records_since_checkpoint += 1
        if self._in_checkpoint:
            return
        if record.get("barrier"):
            # The operation's effect depends on staging the WAL does not
            # carry (e.g. INSERT INTO durable SELECT ... FROM staged):
            # snapshot right away so the acknowledged state is durable.
            self.checkpoint()
        elif self._should_auto_checkpoint():
            self.checkpoint()

    def _should_auto_checkpoint(self) -> bool:
        if self._in_checkpoint:
            return False
        if (
            self.checkpoint_interval
            and self._records_since_checkpoint >= self.checkpoint_interval
        ):
            return True
        return bool(
            self.checkpoint_bytes
            and self.wal_size_bytes() >= self.checkpoint_bytes
        )

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def records_since_checkpoint(self) -> int:
        return self._records_since_checkpoint

    def current_snapshot_name(self) -> str | None:
        """Name of the active snapshot (None before the first checkpoint)."""
        return self._read_current()

    def wal_size_bytes(self) -> int:
        return self.wal.size_bytes()

    # ----------------------------------------------------------- checkpoint

    def checkpoint(self) -> Path:
        """Snapshot the full state, repoint CURRENT, compact the WAL."""
        if self.read_only:
            raise ReadOnlyError(
                "read-only store cannot checkpoint (no byte on disk may "
                "change); open the store in mode='rw' to compact it"
            )
        if self.orpheus is None:
            raise PersistenceError("store is not open")
        started = time.perf_counter()
        self._in_checkpoint = True
        try:
            snapshot = write_snapshot(
                self.orpheus, self.path / SNAPSHOTS_DIR, self.last_lsn
            )
            crash_point("checkpoint.before_current")
            self._write_current(snapshot.name)
            crash_point("checkpoint.after_current")
            # The store has appended every lsn up to last_lsn itself, so the
            # compaction keeps nothing: truncate-to-empty without decoding.
            self.wal.compact(self.last_lsn, known_end_lsn=self.last_lsn)
            self._records_since_checkpoint = 0
            self.orpheus._ephemeral_dirty = False
            # Any un-journaled in-memory effect is captured by the snapshot
            # just written, so the next record no longer needs a barrier.
            self.orpheus._pending_barrier = False
            self._prune_snapshots(keep=snapshot.name)
            _CHECKPOINTS.inc()
            _CHECKPOINT_SECONDS.observe(time.perf_counter() - started)
            return snapshot
        finally:
            self._in_checkpoint = False

    def _write_current(self, snapshot_name: str) -> None:
        # last_lsn rides the pointer so a read-only refresh can detect
        # "the writer checkpointed past me" from this one tiny file,
        # without parsing the (much larger) snapshot manifest.
        atomic_write_bytes(
            self.path / CURRENT_NAME,
            json.dumps(
                {"snapshot": snapshot_name, "last_lsn": self.last_lsn}
            ).encode("utf-8"),
        )

    def _prune_snapshots(self, keep: str) -> None:
        """Best-effort removal of snapshots older than the retention set."""
        root = self.path / SNAPSHOTS_DIR
        names = sorted(
            (
                entry.name
                for entry in root.iterdir()
                if entry.name.startswith("snap-")
            ),
            reverse=True,
        )
        for name in names[KEEP_SNAPSHOTS:]:
            if name == keep or name.endswith(".tmp"):
                continue
            try:
                shutil.rmtree(root / name)
            except OSError:  # pragma: no cover - pruning is advisory
                pass

    def sync(self) -> None:
        """Checkpoint if non-journaled (staging) state changed.

        Called on clean shutdown so uncommitted checkouts survive normal
        process exits while still being lost by crashes.  A read-only
        store has nothing to sync (and must not write) — no-op.
        """
        if self.read_only:
            return
        if self.orpheus is not None and self.orpheus._ephemeral_dirty:
            self.checkpoint()

    def close(self, sync: bool = True) -> None:
        if sync and self.orpheus is not None:
            self.sync()
        if self.orpheus is not None:
            self.orpheus.detach_journal()
        self.wal.close()
        self._release_lock()

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Keep staging durable on a clean exit; on an exception we still
        # close the log but skip the checkpoint (the state may be suspect).
        self.close(sync=exc_type is None)

    # --------------------------------------------------------------- replay

    def _apply(self, payload: dict) -> None:
        orpheus = self.orpheus
        op = payload.get("op")
        try:
            if op == "create_user":
                orpheus.create_user(payload["username"])
            elif op == "config":
                orpheus.config(payload["username"])
            elif op == "init":
                orpheus.init(
                    payload["name"],
                    TableSchema.from_dict(payload["schema"]),
                    payload["rows"],
                    model=payload["model"],
                    message=payload["message"],
                )
            elif op == "drop":
                orpheus.drop(payload["name"])
            elif op == "commit":
                self._apply_commit(payload)
            elif op == "run":
                if payload.get("barrier"):
                    # Barrier records read staged state; their effect lives
                    # in the snapshot the barrier checkpoint wrote, so the
                    # narrow crash window between append and checkpoint may
                    # leave them legitimately unreplayable — record it.
                    try:
                        orpheus.run(payload["sql"], payload["params"])
                    except ReproError as exc:
                        # Statements apply one at a time, so the script's
                        # leading statements may already have taken effect
                        # before the failure — say so rather than implying
                        # the whole record was skipped cleanly.
                        self.recovery_warnings.append(
                            f"barrier run replay failed and may be "
                            f"partially applied ({exc}): {payload['sql']!r}"
                        )
                else:
                    # Durable-only DML must replay; a failure means the
                    # recovered state diverged and falls through to the
                    # RecoveryError escalation below.
                    orpheus.run(payload["sql"], payload["params"])
            elif op == "optimize":
                frequencies = payload["frequencies"]
                orpheus.optimize(
                    payload["cvd"],
                    storage_threshold=payload["storage_threshold"],
                    tolerance=payload["tolerance"],
                    _frequencies=(
                        {vid: count for vid, count in frequencies}
                        if frequencies
                        else None
                    ),
                    # Absent on PR-1/PR-2 era records.
                    _migration_wall_seconds=payload.get(
                        "migration_wall_seconds"
                    ),
                )
            elif op in ("maintain", "migration_start", "migration_finish"):
                self._apply_optimizer_record(op, payload)
            else:
                raise RecoveryError(f"unknown WAL operation {op!r}")
        except RecoveryError:
            raise
        except ReproError as exc:
            raise RecoveryError(f"WAL replay of {op!r} failed: {exc}") from exc
        orpheus._clock = payload["clock"]

    def _apply_optimizer_record(self, op: str, payload: dict) -> None:
        """Replay one journaled optimizer transition.

        The live run computed the decision; replay only applies what the
        journal says — samples append to the trace, a ``migration_start``
        re-adopts the pending plan, a ``migration_finish`` re-executes it
        and verifies the physical result matches the acknowledged one.
        """
        from repro.partition.online import PendingMigration

        optimizer = self.orpheus.optimizer_for(payload["cvd"])
        if optimizer is None:
            raise RecoveryError(
                f"WAL {op!r} record for CVD {payload['cvd']!r} but no "
                f"optimizer was restored — non-deterministic state"
            )
        if op == "maintain":
            optimizer.replay_sample(payload["sample"])
        elif op == "migration_start":
            optimizer.begin_migration(
                PendingMigration.from_state(payload["plan"]),
                journal_event=False,
            )
        else:
            optimizer.complete_pending_migration(
                journal_event=False,
                expected_inserted=payload["inserted"],
                expected_deleted=payload["deleted"],
                wall_seconds=payload["wall_seconds"],
            )

    def _apply_commit(self, payload: dict) -> None:
        orpheus = self.orpheus
        cvd = orpheus.cvd(payload["cvd"])
        if payload["schema"] is not None:
            orpheus._evolve_schema(cvd, TableSchema.from_dict(payload["schema"]))
        parents = list(payload["parents"])
        member_rids = _expand_members(cvd, parents, payload["members"])
        new_records = {}
        for rid, values in payload["new_records"]:
            new_records[rid] = cvd.data_schema.coerce_row(values)
        if new_records:
            cvd._next_rid = max(cvd._next_rid, max(new_records) + 1)
        forced_partition = payload.get("partition")
        model = cvd.model
        old_policy = None
        force_placement = forced_partition is not None and hasattr(
            model, "placement_policy"
        )
        if force_placement:
            # The live placement policy died with the crashed process;
            # replay must land the version exactly where the acknowledged
            # commit did, not re-decide with a fallback rule.
            existing = {state.index for state in model.partition_states()}
            target = forced_partition if forced_partition in existing else None

            def pinned_placement(_vid, _members, _parents, _target=target):
                return _target

            old_policy = model.placement_policy
            model.placement_policy = pinned_placement
        try:
            vid = cvd.ingest_version(
                parents,
                member_rids,
                new_records,
                message=payload["message"],
                checkout_time=payload["checkout_time"],
                commit_time=payload["commit_time"],
            )
        finally:
            if force_placement:
                model.placement_policy = old_policy
        if vid != payload["vid"]:
            raise RecoveryError(
                f"commit replay produced version {vid}, journal says "
                f"{payload['vid']} — non-deterministic state"
            )
        if force_placement and model.partition_of(vid) != forced_partition:
            raise RecoveryError(
                f"commit replay placed version {vid} in partition "
                f"{model.partition_of(vid)}, journal says {forced_partition}"
            )
        staged_name = payload["staged"]
        if not payload["staged_is_file"] and orpheus.db.has_table(staged_name):
            orpheus.db.drop_table(staged_name)
        if staged_name in orpheus.provenance.staged_names():
            orpheus.provenance.remove(staged_name)
        orpheus.access.revoke(staged_name)
        # A live optimizer's maintenance sample rides the commit record
        # (one fsync per commit); re-apply it to the restored trace.
        maintain = payload.get("maintain")
        if maintain is not None:
            optimizer = orpheus.optimizer_for(payload["cvd"])
            if optimizer is None:
                raise RecoveryError(
                    f"commit record for CVD {payload['cvd']!r} carries a "
                    f"maintenance sample but no optimizer was restored — "
                    f"non-deterministic state"
                )
            optimizer.replay_sample(maintain)


# ------------------------------------------------------------ commit coding


def _compact_commit(record: dict) -> dict:
    """Delta-encode a commit's membership against its parents' record order.

    The encoded form ``{"drop": [...], "tail": [...]}`` applies when the
    staged table kept the parents' record order (deletions tombstone in
    place, inserts append — the engine's heap behaviour), which recovery can
    reproduce because :meth:`CVD.parent_record_order` is deterministic.
    Anything else falls back to the explicit member list.
    """
    record = dict(record)
    member_rids = record.pop("member_rids")
    parent_order = record.pop("parent_order")
    new_rids = {rid for rid, _values in record["new_records"]}
    member_set = set(member_rids)
    prefix = [rid for rid in parent_order if rid in member_set]
    cut = len(prefix)
    if member_rids[:cut] == prefix and all(
        rid in new_rids for rid in member_rids[cut:]
    ):
        record["members"] = {
            "drop": [rid for rid in parent_order if rid not in member_set],
            "tail": member_rids[cut:],
        }
    else:
        record["members"] = {"full": member_rids}
    return record


def _expand_members(cvd, parents: list[int], encoded: dict) -> list[int]:
    if "full" in encoded:
        return list(encoded["full"])
    parent_order = list(cvd.parent_record_order(parents))
    dropped = set(encoded["drop"])
    return [rid for rid in parent_order if rid not in dropped] + list(encoded["tail"])
