"""Cross-process checkout cache: one owner, many worker clients.

The pre-fork serve workers are separate processes, so the in-process
:class:`~repro.serve.cache.CheckoutCache` (their L1) cannot share entries
between them.  This module adds the L2: the parent process runs a
:class:`CacheOwner` — a selector-loop thread holding one LRU — reachable
over a unix-domain socket; each worker keeps one persistent
:class:`CacheClient` connection to it.  A checkout computed by worker A
is then a cache hit for workers B..N.

Keys are the exact lsn-tagged tuples from :mod:`repro.serve.cache`
(``checkout_key`` / ``query_key``), so the correct-by-construction story
is unchanged: state at an lsn is state at an lsn, no matter which
*process* populated the entry.  Values are opaque bytes — the worker
pickles its rows before ``put`` and unpickles after ``get`` — so the
owner never imports engine types and never deserializes untrusted data
(the socket lives in a fresh ``tempfile.mkdtemp`` directory, mode 0700,
never inside the store directory: a read-only server must not add even a
socket inode to the store).

Wire format, both directions: a 4-byte little-endian length prefix, then
a pickled tuple.  Requests are ``("get", key)``, ``("put", key, blob)``,
``("invalidate", cvds, below_lsn, queries)``, ``("stats",)``; replies are
``("hit", blob)``, ``("miss", None)`` or ``("ok", payload)``.

Failure model: the cache is an accelerator, never a dependency.  Any
socket error on the client side permanently degrades that worker to
L1-plus-compute (``errors`` counter charged, no retry storm); the owner
drops misbehaving connections and keeps serving the rest.
"""

from __future__ import annotations

import os
import pickle
import select
import selectors
import socket
import struct
import threading
from typing import Any, Hashable

from repro.obs import metrics

from repro.serve.cache import CheckoutCache

_LEN = struct.Struct("<I")
#: One frame's payload ceiling — a corrupt length prefix must not make
#: either side try to allocate gigabytes.
MAX_FRAME = 1 << 28


def _encode(message: tuple) -> bytes:
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _LEN.pack(len(blob)) + blob


def _recv_exact(conn: socket.socket, size: int) -> bytes | None:
    """Read exactly ``size`` bytes from a blocking socket; None on EOF."""
    chunks = []
    while size:
        chunk = conn.recv(min(size, 1 << 16))
        if not chunk:
            return None
        chunks.append(chunk)
        size -= len(chunk)
    return b"".join(chunks)


class CacheOwner:
    """The L2 owner: a single LRU served over a unix socket.

    Runs as a daemon thread in the pre-fork parent.  All connections are
    non-blocking and multiplexed through one selector, so a stalled
    worker cannot wedge the others.
    """

    def __init__(self, socket_path: str, capacity: int = 1024):
        self.path = socket_path
        self.cache = CheckoutCache(capacity)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(socket_path)
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "CacheOwner":
        self._thread = threading.Thread(
            target=self._run, name="cache-owner", daemon=True
        )
        self._thread.start()
        return self

    def close_inherited(self) -> None:
        """Called in a freshly forked child: drop the fd copies the fork
        duplicated (the listener; live worker connections are handled by
        the EOF-on-peer-close semantics and merely leak a few fds until
        the pool exits).  Touches no locks — safe right after fork."""
        try:
            os.close(self._listener.fileno())
        except OSError:
            pass

    # ------------------------------------------------------------- owner loop

    def _run(self) -> None:
        sel = selectors.DefaultSelector()
        sel.register(self._listener, selectors.EVENT_READ, None)
        buffers: dict[socket.socket, bytearray] = {}
        try:
            while not self._stop.is_set():
                for key, _events in sel.select(timeout=0.2):
                    if key.fileobj is self._listener:
                        try:
                            conn, _ = self._listener.accept()
                        except OSError:
                            continue
                        conn.setblocking(False)
                        buffers[conn] = bytearray()
                        sel.register(conn, selectors.EVENT_READ, None)
                        continue
                    conn = key.fileobj  # type: ignore[assignment]
                    if not self._pump(conn, buffers[conn]):
                        sel.unregister(conn)
                        del buffers[conn]
                        conn.close()
        finally:
            for conn in list(buffers):
                conn.close()
            sel.close()

    def _pump(self, conn: socket.socket, buffer: bytearray) -> bool:
        """Drain readable bytes and answer complete frames; False = drop."""
        try:
            chunk = conn.recv(1 << 16)
        except BlockingIOError:
            return True
        except OSError:
            return False
        if not chunk:
            return False  # worker went away — normal lifecycle
        buffer.extend(chunk)
        while True:
            if len(buffer) < _LEN.size:
                return True
            (length,) = _LEN.unpack(buffer[: _LEN.size])
            if length > MAX_FRAME:
                return False
            if len(buffer) < _LEN.size + length:
                return True
            frame = bytes(buffer[_LEN.size : _LEN.size + length])
            del buffer[: _LEN.size + length]
            try:
                reply = self._handle(pickle.loads(frame))
            except Exception:
                return False  # a garbled request poisons only its conn
            if not self._send(conn, _encode(reply)):
                return False

    def _handle(self, message: tuple) -> tuple:
        op = message[0]
        if op == "get":
            value = self.cache.get(message[1])
            return ("miss", None) if value is None else ("hit", value)
        if op == "put":
            key, blob = message[1], message[2]
            if isinstance(blob, bytes):  # opaque bytes only, by contract
                self.cache.put(key, blob)
            return ("ok", None)
        if op == "invalidate":
            cvds, below_lsn, queries = message[1], message[2], message[3]
            return ("ok", self.cache.invalidate(cvds, below_lsn, queries))
        if op == "stats":
            return ("ok", self.cache.stats_dict())
        return ("ok", None)

    @staticmethod
    def _send(conn: socket.socket, data: bytes) -> bool:
        """sendall for a non-blocking socket; False drops the conn."""
        view = memoryview(data)
        while view:
            try:
                _, writable, _ = select.select([], [conn], [], 5.0)
            except OSError:
                return False
            if not writable:
                return False  # worker not draining its replies
            try:
                sent = conn.send(view)
            except BlockingIOError:
                continue
            except OSError:
                return False
            view = view[sent:]
        return True

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._listener.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass


class CacheClient:
    """A worker's handle on the parent's cache owner.

    One persistent connection, lazily opened; strictly request/reply, so
    no framing state survives an error — any failure closes the
    connection and flips the client into permanently-degraded mode
    (every call returns a miss, the worker computes locally).
    """

    def __init__(self, socket_path: str, timeout: float = 5.0):
        self._path = socket_path
        self._timeout = timeout
        self._conn: socket.socket | None = None
        self._broken = False
        self._lock = threading.Lock()

    def _call(self, message: tuple) -> tuple | None:
        if self._broken:
            return None
        with self._lock:
            try:
                if self._conn is None:
                    self._conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    self._conn.settimeout(self._timeout)
                    self._conn.connect(self._path)
                self._conn.sendall(_encode(message))
                header = _recv_exact(self._conn, _LEN.size)
                if header is None:
                    raise ConnectionError("cache owner closed the connection")
                (length,) = _LEN.unpack(header)
                if length > MAX_FRAME:
                    raise ConnectionError("oversized cache reply")
                frame = _recv_exact(self._conn, length)
                if frame is None:
                    raise ConnectionError("truncated cache reply")
                return pickle.loads(frame)
            except (OSError, pickle.PickleError, ConnectionError, EOFError):
                self._degrade()
                return None

    def _degrade(self) -> None:
        metrics.registry().counter("serve.l2.errors").inc()
        self._broken = True
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    @property
    def degraded(self) -> bool:
        return self._broken

    # ------------------------------------------------------------------- api

    def get(self, key: Hashable) -> bytes | None:
        reply = self._call(("get", key))
        if reply is not None and reply[0] == "hit":
            metrics.registry().counter("serve.l2.hits").inc()
            return reply[1]
        metrics.registry().counter("serve.l2.misses").inc()
        return None

    def put(self, key: Hashable, blob: bytes) -> None:
        if self._call(("put", key, blob)) is not None:
            metrics.registry().counter("serve.l2.puts").inc()

    def invalidate(
        self,
        cvds: set | None = None,
        below_lsn: int | None = None,
        queries: bool = True,
    ) -> int:
        reply = self._call(("invalidate", cvds, below_lsn, queries))
        return reply[1] if reply is not None else 0

    def stats(self) -> dict[str, Any] | None:
        reply = self._call(("stats",))
        return reply[1] if reply is not None else None

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except OSError:
                    pass
                self._conn = None
