"""Thread-based session manager: one writer, N read-only serving sessions.

The shape the paper's bolt-on design wants at serving time: a single
update path (the exclusive-lock writer store) next to many concurrent
analytical readers, each a :class:`repro.persist.Store` opened with
``mode="ro"`` so it shares the store directory without writing a byte.
Sessions live in a pool; a request borrows one, brings it up to date with
a cheap lsn-tail :meth:`~repro.persist.Store.refresh`, serves through the
shared :class:`~repro.serve.cache.CheckoutCache`, and returns it.

Reentrancy model: a session is used by one thread at a time (the pool
enforces it), sessions never share mutable state with each other, and the
cache carries its own lock — so N sessions serve N requests concurrently
with no global lock.  With an in-process writer, readers know exactly when
they are behind (the writer's lsn is a field away); in follower mode
(``writer=False``, the writer lives in another process) every borrow
polls the WAL tail, which the byte-offset resume keeps cheap.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.errors import PersistenceError, StaleReadError
from repro.obs import metrics
from repro.persist import RefreshResult, Store

from repro.serve.cache import CheckoutCache, checkout_key, query_key

# Pid-aware handles: a pre-fork serve worker charges its own registry.
_BORROW_WAIT = metrics.histogram("serve.pool.borrow_wait_seconds")
_IN_FLIGHT = metrics.gauge("serve.pool.in_flight")

_MISSING = object()
#: Posted into the session pool by close(): wakes borrowers blocked on an
#: empty pool so they fail cleanly instead of hanging forever.
_CLOSED = object()


class ReadSession:
    """One read-only store plus its view of the shared cache."""

    def __init__(
        self,
        path: str | Path | None,
        cache: CheckoutCache,
        session_id: int = 0,
        store: Store | None = None,
    ):
        # A pre-built store (the pre-fork worker path: the parent loaded
        # it once, the child inherited it) skips the per-session snapshot
        # load that `path` would pay.
        if store is None:
            if path is None:
                raise PersistenceError("ReadSession needs a path or a store")
            store = Store.open(path, mode="ro")
        self.store = store
        self.cache = cache
        self.session_id = session_id
        self.refreshes = 0
        self.requests = 0

    @property
    def orpheus(self):
        return self.store.orpheus

    @property
    def last_lsn(self) -> int:
        return self.store.last_lsn

    def refresh(self) -> RefreshResult:
        """Catch up with the writer and evict what it made stale."""
        result = self.store.refresh()
        if result.changed:
            self.refreshes += 1
            self._invalidate(result)
        return result

    def refresh_if_behind(self, writer_lsn: int | None) -> RefreshResult | None:
        """Refresh when known to be behind; ``None`` target means poll."""
        if writer_lsn is not None and self.last_lsn >= writer_lsn:
            return None
        return self.refresh()

    def ensure_lsn(self, min_lsn: int | None) -> None:
        """The refresh fence: never answer from behind ``min_lsn``.

        ``min_lsn`` is an lsn the client has already observed (a prior
        response carried it).  A session at or past it serves as-is; one
        behind it refreshes to the durable tip first.  If even the tip is
        behind, the client's watermark came from a future this store has
        not seen (wrong store, or an unsynced replica) — error out rather
        than silently time-travel the client backwards.
        """
        if min_lsn is None or self.last_lsn >= min_lsn:
            return
        self.refresh()
        if self.last_lsn < min_lsn:
            raise StaleReadError(
                f"store is at lsn {self.last_lsn}, behind the client's "
                f"required lsn {min_lsn}"
            )

    def _invalidate(self, result: RefreshResult) -> None:
        if result.full_reload:
            # No per-record classification available: everything older
            # than the reloaded lsn is suspect.
            self.cache.invalidate(cvds=None, below_lsn=result.last_lsn)
            return
        self.cache.invalidate(
            # Empty touched set with ran_sql still drops query entries.
            cvds=result.touched_cvds,
            below_lsn=result.last_lsn,
            queries=bool(result.ran_sql or result.touched_cvds),
        )

    # -------------------------------------------------------------- serving

    def checkout(self, cvd: str, vids: int | Sequence[int]) -> list[tuple]:
        """Cached merged checkout of ``vids`` at this session's lsn."""
        self.requests += 1
        key = checkout_key(cvd, vids, self.last_lsn)
        rows = self.cache.get(key, _MISSING)
        if rows is _MISSING:
            rows = self.orpheus.checkout_rows(cvd, vids)
            self.cache.put(key, rows)
        return rows

    def query(self, sql: str, params: Sequence[Any] = ()):
        """Cached read-only SQL at this session's lsn."""
        self.requests += 1
        key = query_key(sql, params, self.last_lsn)
        result = self.cache.get(key, _MISSING)
        if result is _MISSING:
            result = self.orpheus.run(sql, params)
            self.cache.put(key, result)
        return result

    def close(self) -> None:
        self.store.close()


class ServeManager:
    """Multiplex one writer store and a pool of read-only sessions."""

    def __init__(
        self,
        path: str | Path,
        readers: int = 4,
        cache_capacity: int = 256,
        writer: bool = True,
        checkpoint_interval: int = 256,
    ):
        self.path = Path(path)
        self.cache = CheckoutCache(cache_capacity)
        self.writer_store: Store | None = None
        self._write_lock = threading.RLock()
        self._sessions: list[ReadSession] = []
        self._idle: queue.Queue[ReadSession] = queue.Queue()
        self._closed = False
        #: Makes "check _closed, then re-queue or retire" atomic against
        #: close(): a borrower's finally and close() can otherwise
        #: interleave so a just-returned session escapes both paths and
        #: leaks its store (fd + shared flock) for the process lifetime.
        self._pool_lock = threading.Lock()
        #: Collector names this manager registered with the obs registry,
        #: remembered with their callables so close() only unregisters its
        #: own (a fresher manager may have overwritten a name).
        self._collectors: list[tuple[str, Any]] = []
        try:
            if writer:
                self.writer_store = Store.open(
                    path, checkpoint_interval=checkpoint_interval
                )
            for session_id in range(max(1, readers)):
                session = ReadSession(path, self.cache, session_id)
                self._sessions.append(session)
                self._idle.put(session)
        except BaseException:
            self.close()
            raise
        self._register_collectors()

    def _register_collectors(self) -> None:
        """Expose the cache and each session's engine I/O pull-style.

        Registration is snapshot-time only: the counters themselves are the
        unmodified CacheStats/IOStats the hot paths already charge, so the
        gated benchmark figures cannot drift.
        """
        obs = metrics.registry()
        entries: list[tuple[str, Any]] = [("serve.cache", self.cache.stats_dict)]
        for session in self._sessions:
            entries.append(
                (
                    f"serve.session_{session.session_id}.io",
                    session.store.orpheus.db.stats.as_dict,
                )
            )
        if self.writer_store is not None:
            writer_stats = self.writer_store.orpheus.db.stats
            entries.append(("serve.writer.io", writer_stats.as_dict))
        for name, collect in entries:
            obs.register_collector(name, collect)
        self._collectors = entries

    # ---------------------------------------------------------------- stats

    def stats_snapshot(self) -> dict:
        """The full observability snapshot for this process (the payload of
        the serve ``{"op": "stats"}`` endpoint); pid included so multi-
        process workers can be told apart side by side."""
        return {"pid": os.getpid(), "metrics": metrics.registry().snapshot()}

    # --------------------------------------------------------------- writer

    @property
    def writer(self):
        """The writer session's OrpheusDB (None in follower mode)."""
        return self.writer_store.orpheus if self.writer_store else None

    @property
    def writer_lsn(self) -> int | None:
        return self.writer_store.last_lsn if self.writer_store else None

    @contextmanager
    def write(self) -> Iterator[Any]:
        """Serialized access to the writer; readers pick changes up on
        their next borrow (bounded staleness, never inconsistency)."""
        if self.writer_store is None:
            raise PersistenceError(
                "this manager follows an external writer (writer=False); "
                "commit through the owning process instead"
            )
        with self._write_lock:
            yield self.writer_store.orpheus

    # -------------------------------------------------------------- readers

    @contextmanager
    def session(self, refresh: bool = True) -> Iterator[ReadSession]:
        """Borrow a read session from the pool (blocks when all are busy)."""
        if self._closed:
            raise PersistenceError("serve manager is closed")
        waited = time.perf_counter()
        session = self._idle.get()
        _BORROW_WAIT.observe(time.perf_counter() - waited)
        if session is _CLOSED:
            # close() ran while we were blocked; pass the wake-up along to
            # any other blocked borrower.
            self._idle.put(_CLOSED)
            raise PersistenceError("serve manager is closed")
        _IN_FLIGHT.inc()
        try:
            if refresh:
                session.refresh_if_behind(self.writer_lsn)
            yield session
        finally:
            _IN_FLIGHT.dec()
            with self._pool_lock:
                if self._closed:
                    # The pool is being torn down: retire the session here
                    # rather than re-queueing it into a dead pool (close()
                    # only retires sessions that were idle when it ran).
                    session.close()
                else:
                    self._idle.put(session)

    def checkout(self, cvd: str, vids: int | Sequence[int]) -> list[tuple]:
        with self.session() as session:
            return session.checkout(cvd, vids)

    def checkout_payload(
        self, cvd: str, vids: int | Sequence[int], min_lsn: int | None = None
    ) -> tuple[list[str], list[tuple], int]:
        """(columns, rows, lsn) resolved on ONE session borrow, so the
        column list always matches the rows' arity even if a schema
        evolution lands between requests.  The returned lsn is the exact
        state the rows reflect — clients echo it back as ``min_lsn`` to
        get read-your-writes across the worker pool."""
        with self.session() as session:
            session.ensure_lsn(min_lsn)
            rows = session.checkout(cvd, vids)
            schema = session.orpheus.cvd(cvd).data_schema
            return ["rid", *schema.column_names], rows, session.last_lsn

    def query(self, sql: str, params: Sequence[Any] = ()):
        with self.session() as session:
            return session.query(sql, params)

    def query_payload(
        self, sql: str, params: Sequence[Any] = (), min_lsn: int | None = None
    ) -> tuple[Any, int]:
        """(result, lsn) under one borrow, with the same refresh fence."""
        with self.session() as session:
            session.ensure_lsn(min_lsn)
            return session.query(sql, params), session.last_lsn

    def columns(self, cvd: str) -> list[str]:
        """Column names of a checkout payload (rid first, like the rows)."""
        with self.session() as session:
            schema = session.orpheus.cvd(cvd).data_schema
            return ["rid", *schema.column_names]

    def refresh_all(self) -> tuple[list[dict], int]:
        """Refresh every currently idle session; returns (refreshed, busy).

        Sessions borrowed by in-flight requests cannot be refreshed from
        here (they are single-threaded by design); they catch up on their
        next borrow anyway, so they are merely reported as busy.
        """
        sessions: list[ReadSession] = []
        try:
            while len(sessions) < len(self._sessions):
                item = self._idle.get_nowait()
                if item is _CLOSED:
                    self._idle.put(_CLOSED)
                    break
                sessions.append(item)
        except queue.Empty:
            pass
        refreshed = []
        try:
            for session in sessions:
                result = session.refresh()
                refreshed.append(
                    {"id": session.session_id, "lsn": result.last_lsn}
                )
        finally:
            with self._pool_lock:
                for session in sessions:
                    if self._closed:
                        session.close()
                    else:
                        self._idle.put(session)
        return refreshed, len(self._sessions) - len(sessions)

    # --------------------------------------------------------------- status

    def status(self) -> dict:
        return {
            "path": str(self.path),
            "mode": "writer" if self.writer_store else "follower",
            "writer_lsn": self.writer_lsn,
            "readers": len(self._sessions),
            "sessions": [
                {
                    "id": session.session_id,
                    "lsn": session.last_lsn,
                    "requests": session.requests,
                    "refreshes": session.refreshes,
                }
                for session in self._sessions
            ],
            "cache": self.cache.stats_dict(),
        }

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        obs = metrics.registry()
        for name, collect in self._collectors:
            obs.unregister_collector(name, collect)
        self._collectors = []
        with self._pool_lock:
            if self._closed:
                return
            # Under the pool lock: any borrower's finally now either ran
            # before us (its session is in the queue and drained below) or
            # runs after and sees _closed, retiring its session itself.
            self._closed = True
        # Retire every idle session; sessions borrowed by in-flight
        # requests keep their stores open until the borrower's finally
        # retires them (never close a store out from under a reader).
        while True:
            try:
                item = self._idle.get_nowait()
            except queue.Empty:
                break
            if item is not _CLOSED:
                item.close()
        # Wake any borrower blocked on the now-empty pool.
        self._idle.put(_CLOSED)
        self._sessions = []
        if self.writer_store is not None:
            self.writer_store.close()
            self.writer_store = None

    def __enter__(self) -> "ServeManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
