"""Version-aware result cache for the serving layer.

Checkout results are a pure function of ``(cvd, version set, store lsn)``:
WAL replay is deterministic, so any two read-only sessions at the same lsn
hold identical state.  That makes the lsn-tagged key *correct by
construction* — a stale entry can never be served for a fresh lsn, no
matter which session populated it.  Explicit invalidation (on commit,
schema evolution, and partition migration, as reported by
:meth:`repro.persist.Store.refresh`) is therefore memory hygiene: it
evicts entries that no live session can ever hit again, rather than being
what correctness rests on.

Query results get the same treatment with the SQL text + params in the key;
since SQL may read arbitrary durable tables, query entries are invalidated
conservatively whenever *any* change lands.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Sequence


def checkout_key(cvd: str, vids: Sequence[int] | int, last_lsn: int) -> tuple:
    """Cache key for a checkout: ``(cvd, tuple(vids), last_lsn)``.

    The vid *sequence* is the key, not a set: multi-version checkout is
    order-sensitive (the first listed version wins primary-key conflicts,
    Section 2.2), so ``[2, 3]`` and ``[3, 2]`` are different results and
    must never share an entry.
    """
    if isinstance(vids, int):
        vids = (vids,)
    return ("checkout", cvd, tuple(vids), last_lsn)


def query_key(sql: str, params: Sequence[Any], last_lsn: int) -> tuple:
    return ("query", sql, tuple(params), last_lsn)


@dataclass
class CacheStats:
    """Counters for one :class:`CheckoutCache`.

    Lock discipline: every mutation happens inside the owning cache's
    ``_lock`` (get/put/invalidate/clear all take it before touching the
    counters).  A bare ``to_dict`` read can therefore interleave with a
    mutation and see a torn pair (e.g. the hit counted but not yet the
    entry moved); use :meth:`CheckoutCache.stats_dict` for an atomic
    snapshot.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidated: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
        }

    # The observability registry's collector protocol spells it as_dict.
    as_dict = to_dict


class CheckoutCache:
    """A thread-safe LRU over lsn-tagged checkout and query results."""

    def __init__(self, capacity: int = 256):
        #: ``capacity=0`` disables the cache entirely (every get misses,
        #: every put is dropped) — the serving benchmarks use it to
        #: measure raw scan throughput without changing the serve path.
        self.capacity = max(0, capacity)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_dict(self) -> dict:
        """Atomic counter snapshot plus the live entry count.

        Taken under the cache lock, so the counters are a consistent set:
        no concurrent get/put can tear hits against misses mid-read.
        """
        with self._lock:
            return {**self.stats.to_dict(), "entries": len(self._entries)}

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(
        self,
        cvds: set[str] | None = None,
        below_lsn: int | None = None,
        queries: bool = True,
    ) -> int:
        """Evict entries made stale by writer progress; returns the count.

        ``cvds=None`` matches every CVD.  ``below_lsn`` keeps entries
        already tagged with the new lsn (another session may have refreshed
        first and repopulated).  ``queries`` additionally drops query
        entries — SQL can read any durable table, so any applied record
        makes them suspect.
        """
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                kind = key[0]
                if kind == "checkout":
                    if cvds is not None and key[1] not in cvds:
                        continue
                elif not queries:
                    continue
                if below_lsn is not None and key[-1] >= below_lsn:
                    continue
                del self._entries[key]
                dropped += 1
            self.stats.invalidated += dropped
        return dropped

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidated += dropped
        return dropped
