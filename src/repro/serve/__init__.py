"""repro.serve — a concurrent read-serving layer over the durable store.

OrpheusDB is bolt-on versioning for a *shared* relational store; the HTAP
split this package implements is one update path and many concurrent
analytical readers:

* :mod:`repro.serve.cache` — a version-aware LRU whose keys carry
  ``(cvd, tuple(vids), last_lsn)``; correctness comes from the lsn
  tag (replay is deterministic, so state at an lsn is state at an lsn),
  invalidation on commit / schema evolution / partition migration is
  memory hygiene.
* :mod:`repro.serve.manager` — :class:`ServeManager`, a thread-based pool
  multiplexing one ``mode="rw"`` writer store and N ``mode="ro"`` reader
  sessions that catch up via the WAL-tail :meth:`Store.refresh`.
* :mod:`repro.serve.server` — a JSON-line TCP front end
  (``orpheus serve``) with a one-shot and a persistent client.
* :mod:`repro.serve.workers` — :class:`PreforkServer`, the
  process-parallel front end (``orpheus serve --workers N``): one
  snapshot load in the parent, N forked reader workers accepting on a
  shared socket, a supervisor that respawns the dead.
* :mod:`repro.serve.sharedcache` — the cross-process L2 checkout cache
  (an owner thread in the parent, one unix-socket client per worker).
"""

from repro.serve.cache import CacheStats, CheckoutCache, checkout_key, query_key
from repro.serve.manager import ReadSession, ServeManager
from repro.serve.server import ServeClient, ServeServer, request, serve
from repro.serve.sharedcache import CacheClient, CacheOwner
from repro.serve.workers import PreforkServer

__all__ = [
    "CheckoutCache",
    "CacheStats",
    "checkout_key",
    "query_key",
    "ReadSession",
    "ServeManager",
    "ServeClient",
    "ServeServer",
    "CacheClient",
    "CacheOwner",
    "PreforkServer",
    "request",
    "serve",
]
