"""Pre-fork process workers: load the snapshot once, fork it N times.

The threaded server (:mod:`repro.serve.server`) multiplexes reader
*threads*, so checkout scans serialize on the GIL and N cores give ~1
core of read throughput.  This module is the process-parallel shape:

- the parent opens the store **read-only once** (one snapshot load, one
  WAL replay), binds and listens on the TCP socket, then forks N reader
  workers — each inherits the loaded :class:`~repro.persist.Store` via
  copy-on-write and calls :meth:`Store.handle_fork` so advisory-lock fds
  and WAL handles are re-opened, never shared;
- every worker accepts on the **inherited listening socket** (one shared
  kernel accept queue — no REUSEPORT hash imbalance, and a dead worker's
  backlog is simply drained by its siblings) and serves one connection
  at a time, start to finish: a connection is pinned to one process, so
  ``{"op": "stats"}`` snapshots are per-worker by construction;
- workers stay fresh **independently**: each request polls the writer's
  durable tail (CURRENT pointer + WAL tail) via the incremental
  :meth:`Store.refresh`, and the ``min_lsn`` fence guarantees a client
  is never answered from behind an lsn it has already observed;
- a checkout computed by one worker is shared with the others through
  the parent's :class:`~repro.serve.sharedcache.CacheOwner` (L2), keyed
  by the same lsn-tagged tuples as the in-process L1;
- a supervisor thread in the parent reaps dead workers (``waitpid`` on
  *specific* pids — never ``-1``, which would steal unrelated children
  from an embedding test runner) and re-forks replacements from the
  refreshed template store; SIGTERM drains workers cleanly, and the
  ``shutdown`` op (worker exit code 99) winds down the whole pool.

The worker pool always runs in follower mode: the writer, if there is
one, lives in another process and is discovered through the WAL.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import select
import signal
import socket
import tempfile
import threading
import time
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError
from repro.obs import metrics, trace
from repro.persist import Store

from repro.serve.cache import CheckoutCache, checkout_key
from repro.serve.manager import _MISSING, ReadSession
from repro.serve.server import (
    KNOWN_OPS,
    checkout_response,
    close_inherited_clients,
    error_code,
    error_response,
)
from repro.serve.sharedcache import CacheClient, CacheOwner

#: A worker that was asked to shut down (the ``shutdown`` op) exits with
#: this code; the supervisor reads it as "wind down the whole pool", any
#: other death as "respawn".
WORKER_SHUTDOWN_EXIT = 99
#: Exit code for a worker that died on an unexpected internal error.
WORKER_ERROR_EXIT = 70

_log = logging.getLogger("repro.serve.prefork")


def _describe_exit(code: int) -> str:
    """Human-readable death cause from a waitstatus exit code."""
    if code < 0:
        try:
            name = signal.Signals(-code).name
        except ValueError:
            name = "unknown signal"
        return f"died on signal {-code} ({name})"
    return f"exited with status {code}"


class WorkerSession(ReadSession):
    """A worker's single read session: L1 in-process, L2 via the owner.

    Only checkouts go through L2 — their values are plain row tuples,
    cheap to pickle and worth sharing; query results stay L1-only.
    """

    def __init__(
        self,
        store: Store,
        cache: CheckoutCache,
        l2: CacheClient | None,
        session_id: int = 0,
    ):
        super().__init__(None, cache, session_id, store=store)
        self.l2 = l2

    def checkout(self, cvd: str, vids: int | Sequence[int]) -> list[tuple]:
        self.requests += 1
        key = checkout_key(cvd, vids, self.last_lsn)
        rows = self.cache.get(key, _MISSING)
        if rows is not _MISSING:
            return rows
        blob = self.l2.get(key) if self.l2 is not None else None
        if blob is not None:
            rows = pickle.loads(blob)
        else:
            rows = self.orpheus.checkout_rows(cvd, vids)
            if self.l2 is not None:
                self.l2.put(key, pickle.dumps(rows, pickle.HIGHEST_PROTOCOL))
        self.cache.put(key, rows)
        return rows


# ---------------------------------------------------------------------- worker


def _worker_loop(
    store: Store,
    listener: socket.socket,
    cache_path: str | None,
    worker_id: int,
    cache_capacity: int,
    parent_pid: int,
) -> int:
    """A forked worker's whole life; returns the process exit code."""
    # First metric touch after fork rebinds a per-pid registry, so this
    # worker's counters (snapshot loads included: zero in steady state)
    # never mix with the parent's copied totals.
    metrics.registry()
    store.handle_fork()
    l2 = CacheClient(cache_path) if cache_path else None
    session = WorkerSession(
        store, CheckoutCache(cache_capacity), l2, session_id=worker_id
    )

    drain = threading.Event()
    signal.signal(signal.SIGTERM, lambda _s, _f: drain.set())
    # The parent's terminal delivers SIGINT to the whole foreground
    # process group; the parent coordinates the drain, workers wait for
    # its SIGTERM so in-flight requests finish first.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # O_NONBLOCK lives on the shared file description, so *every* worker
    # runs the same select-then-accept loop; losing an accept race is a
    # plain BlockingIOError, not an error.
    listener.setblocking(False)
    while not drain.is_set():
        if os.getppid() != parent_pid:
            return 0  # orphaned: the supervisor died under us
        try:
            ready, _, _ = select.select([listener], [], [], 0.25)
        except OSError:
            return 0  # listener closed: pool shutdown
        if not ready:
            continue
        try:
            conn, _addr = listener.accept()
        except (BlockingIOError, OSError):
            continue  # a sibling won the race
        try:
            saw_shutdown = _serve_connection(conn, session, drain)
        finally:
            try:
                conn.close()
            except OSError:
                pass
        if saw_shutdown:
            return WORKER_SHUTDOWN_EXIT
    session.close()
    if l2 is not None:
        l2.close()
    return 0


def _serve_connection(
    conn: socket.socket, session: WorkerSession, drain: threading.Event
) -> bool:
    """Serve one pinned connection until EOF; True if shutdown was asked.

    The read loop buffers by hand with a short recv timeout instead of
    ``makefile().readline()``: a timeout mid-``readline`` would corrupt
    the buffered reader's state, while here it is just another chance to
    notice the drain flag.  A request in flight always completes — drain
    is only checked between requests.
    """
    conn.settimeout(0.25)
    buffer = b""
    while True:
        newline = buffer.find(b"\n")
        if newline < 0:
            try:
                chunk = conn.recv(1 << 16)
            except socket.timeout:
                if drain.is_set():
                    return False  # idle connection; drop it and drain out
                continue
            except OSError:
                return False
            if not chunk:
                return False  # client EOF — the normal end
            buffer += chunk
            continue
        line, buffer = buffer[:newline].strip(), buffer[newline + 1 :]
        if not line:
            continue
        response = _handle_line(line, session)
        payload = json.dumps(response).encode("utf-8") + b"\n"
        try:
            # A fat payload may need the client to drain its socket;
            # give the send a real window, then restore the drain-aware
            # read timeout.
            conn.settimeout(30.0)
            conn.sendall(payload)
        except OSError:
            return False
        finally:
            conn.settimeout(0.25)
        if response.get("bye"):
            return True


def _handle_line(line: bytes, session: WorkerSession) -> dict:
    """Decode, dispatch, meter — the worker-side twin of the threaded
    handler's per-request bookkeeping."""
    registry = metrics.registry()
    started = time.perf_counter()
    op_label = "unknown"
    try:
        request = json.loads(line.decode("utf-8"))
        op = request.get("op")
        if op in KNOWN_OPS:
            op_label = op
        with trace.span("serve.request", trace_id=request.get("trace"), op=op):
            response = _dispatch(request, session)
    except (ValueError, KeyError, TypeError) as exc:
        response = error_response(f"bad request: {exc}", "bad_request")
    except ReproError as exc:
        response = error_response(str(exc), error_code(exc))
    except Exception as exc:  # keep the connection alive
        response = error_response(
            f"internal error: {type(exc).__name__}: {exc}", "internal"
        )
    registry.counter(f"serve.requests.{op_label}").inc()
    registry.histogram(f"serve.request_seconds.{op_label}").observe(
        time.perf_counter() - started
    )
    return response


def _dispatch(request: dict, session: WorkerSession) -> dict:
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "pong": True, "pid": os.getpid()}
    if op == "status":
        return {"ok": True, "status": _status(session)}
    if op == "stats":
        return {
            "ok": True,
            "stats": {
                "pid": os.getpid(),
                "worker": session.session_id,
                "metrics": metrics.registry().snapshot(),
            },
        }
    if op == "checkout":
        # Every read request polls the writer's durable tail first — the
        # coordinated-refresh half of the design; the min_lsn fence is
        # then enforced against the refreshed lsn.
        session.refresh()
        session.ensure_lsn(request.get("min_lsn"))
        rows = session.checkout(request["cvd"], request["vids"])
        schema = session.orpheus.cvd(request["cvd"]).data_schema
        return checkout_response(
            ["rid", *schema.column_names],
            rows,
            session.last_lsn,
            include_rows=request.get("rows", True),
        )
    if op == "query":
        session.refresh()
        session.ensure_lsn(request.get("min_lsn"))
        result = session.query(request["sql"], request.get("params", ()))
        return {
            "ok": True,
            "columns": result.columns,
            "rows": [list(row) for row in result.rows],
            "count": result.rowcount,
            "lsn": session.last_lsn,
        }
    if op == "refresh":
        result = session.refresh()
        return {
            "ok": True,
            "sessions": [{"id": session.session_id, "lsn": result.last_lsn}],
            "busy": 0,
        }
    if op == "shutdown":
        return {"ok": True, "bye": True}
    return error_response(f"unknown op {op!r}", "unknown_op")


def _status(session: WorkerSession) -> dict:
    status = {
        "path": str(session.store.path),
        "mode": "prefork-worker",
        "pid": os.getpid(),
        "worker": session.session_id,
        "writer_lsn": None,
        "lsn": session.last_lsn,
        "requests": session.requests,
        "refreshes": session.refreshes,
        "cache": session.cache.stats_dict(),
    }
    if session.l2 is not None:
        status["l2"] = session.l2.stats() or {"degraded": True}
    return status


# ---------------------------------------------------------------------- parent


class PreforkServer:
    """Parent of a pre-fork worker pool; API-compatible with ServeServer.

    ``start()`` forks the workers; ``serve_forever()`` blocks until the
    pool winds down (signal, ``shutdown`` op, or :meth:`shutdown`);
    ``address`` is the bound TCP endpoint.  One parent-side snapshot
    load serves every worker the pool will ever have — respawns re-fork
    from the (refreshed) template, they do not reload.
    """

    def __init__(
        self,
        path: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache_capacity: int = 256,
        shared_cache: bool = True,
        l2_capacity: int = 1024,
        respawn_limit: int = 16,
    ):
        self.path = Path(path)
        self.workers = max(1, workers)
        #: Total respawns the pool tolerates over its lifetime; one more
        #: abnormal death marks the pool failed and winds it down — a
        #: crash-looping worker must be a bounded, visible failure, not
        #: an infinite respawn spin.
        self.respawn_limit = max(0, respawn_limit)
        #: Set when the pool winds itself down on a crash loop; the CLI
        #: turns it into a nonzero exit.
        self.failure: str | None = None
        self._cache_capacity = max(0, cache_capacity)
        # The one snapshot load + WAL replay of the pool's lifetime.
        self._template = Store.open(path, mode="ro")
        self._listener: socket.socket | None = None
        self._owner: CacheOwner | None = None
        self._cache_dir: str | None = None
        self._cache_path: str | None = None
        try:
            self._listener = socket.create_server((host, port), backlog=128)
            if shared_cache:
                # Never inside the store directory: read-only serving
                # promises not to add a single inode there.
                self._cache_dir = tempfile.mkdtemp(prefix="orpheus-l2-")
                self._cache_path = os.path.join(self._cache_dir, "cache.sock")
                self._owner = CacheOwner(self._cache_path, capacity=l2_capacity)
        except BaseException:
            self._cleanup()
            raise
        self._pids: dict[int, int] = {}  # pid -> worker id
        self._pids_lock = threading.Lock()
        self._supervisor: threading.Thread | None = None
        self._started = False
        self._stop = threading.Event()
        self._done = threading.Event()
        self._shutdown_lock = threading.RLock()
        self._shut_down = False
        self.respawns = 0

    # ------------------------------------------------------------------ wiring

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._listener.getsockname()[:2]
        return host, port

    def worker_pids(self) -> list[int]:
        with self._pids_lock:
            return sorted(self._pids)

    def start(self) -> "PreforkServer":
        if self._started:
            return self
        self._started = True
        if self._owner is not None:
            self._owner.start()
        for worker_id in range(self.workers):
            self._spawn(worker_id)
        self._supervisor = threading.Thread(
            target=self._supervise, name="prefork-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def _spawn(self, worker_id: int) -> None:
        parent_pid = os.getpid()
        pid = os.fork()
        if pid == 0:  # the worker
            code = WORKER_ERROR_EXIT
            try:
                # Only objects created *after* the fork (plus the
                # explicitly fork-fixed store) are touched from here on —
                # inherited locks may have been mid-acquire in some
                # parent thread at fork time.
                if self._owner is not None:
                    self._owner.close_inherited()
                # Inherited *client* connections (the embedding process's
                # ServeClients) must go too: a duplicate client FD keeps
                # its TCP connection established after the real client
                # closes, pinning whichever sibling serves it — and a
                # worker can even inherit the client end of the very
                # connection it later accepts, deadlocking against
                # itself.  Bit us under chaos: respawn-while-serving.
                close_inherited_clients()
                code = _worker_loop(
                    self._template,
                    self._listener,
                    self._cache_path,
                    worker_id,
                    self._cache_capacity,
                    parent_pid,
                )
            except BaseException:
                code = WORKER_ERROR_EXIT
            finally:
                os._exit(code)
        with self._pids_lock:
            self._pids[pid] = worker_id

    # -------------------------------------------------------------- supervisor

    def _supervise(self) -> None:
        """Reap dead workers and keep the pool at full strength.

        Polls *specific* pids with WNOHANG — ``waitpid(-1)`` would steal
        exit notifications for unrelated children of an embedding
        process (a test runner, a benchmark coordinator).
        """
        while not self._stop.is_set():
            with self._pids_lock:
                pids = dict(self._pids)
            for pid, worker_id in pids.items():
                try:
                    reaped, status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    reaped, status = pid, 0
                if reaped == 0:
                    continue
                with self._pids_lock:
                    self._pids.pop(pid, None)
                code = os.waitstatus_to_exitcode(status)
                if code == WORKER_SHUTDOWN_EXIT:
                    # A client asked the pool to shut down.  Run it from
                    # a helper thread: shutdown() joins this one.
                    threading.Thread(target=self.shutdown, daemon=True).start()
                    return
                if self._stop.is_set():
                    continue
                cause = _describe_exit(code)
                if self.respawns >= self.respawn_limit:
                    self.failure = (
                        f"worker {worker_id} (pid {pid}) {cause}; respawn "
                        f"limit {self.respawn_limit} exhausted after "
                        f"{self.respawns} respawns"
                    )
                    _log.error("%s; winding the pool down", self.failure)
                    metrics.registry().counter("serve.prefork.crash_loops").inc()
                    threading.Thread(target=self.shutdown, daemon=True).start()
                    return
                _log.warning(
                    "worker %d (pid %d) %s; respawning", worker_id, pid, cause
                )
                # Bring the template near the tip before re-forking so
                # the replacement starts hot (it still refreshes per
                # request like everyone else).
                try:
                    self._template.refresh()
                except Exception:
                    pass
                self.respawns += 1
                metrics.registry().counter("serve.prefork.respawns").inc()
                self._spawn(worker_id)
            self._stop.wait(0.05)

    # --------------------------------------------------------------- lifecycle

    def serve_forever(self) -> None:
        """Foreground mode (the CLI): block until the pool winds down."""
        self.start()
        try:
            while not self._stop.wait(0.2):
                pass
        finally:
            self.shutdown()
        self._done.wait(timeout=15)

    def shutdown(self) -> None:
        """Drain and reap every worker, then release all resources.

        Idempotent and safe from signal handlers, helper threads, and
        ``serve_forever``'s finally — the RLock plus the flag make the
        second and later calls no-ops that still wait for the first."""
        self._stop.set()
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
            supervisor = self._supervisor
            if supervisor is not None and supervisor is not threading.current_thread():
                supervisor.join(timeout=5)
            with self._pids_lock:
                pids = dict(self._pids)
                self._pids = {}
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
            deadline = time.monotonic() + 10.0
            for pid in pids:
                if not self._reap(pid, deadline):
                    try:
                        os.kill(pid, signal.SIGKILL)
                        os.waitpid(pid, 0)
                    except (ProcessLookupError, ChildProcessError):
                        pass
            self._cleanup()
            self._done.set()

    @staticmethod
    def _reap(pid: int, deadline: float) -> bool:
        while time.monotonic() < deadline:
            try:
                reaped, _status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return True
            if reaped:
                return True
            time.sleep(0.02)
        return False

    def _cleanup(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._owner is not None:
            self._owner.close()
            self._owner = None
        if self._cache_dir is not None:
            try:
                os.rmdir(self._cache_dir)
            except OSError:
                pass
            self._cache_dir = None
        if self._template is not None:
            self._template.close()
            self._template = None

    def __enter__(self) -> "PreforkServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
