"""A line-oriented JSON TCP front end over :class:`ServeManager`.

One request per line, one JSON object per response line::

    {"op": "checkout", "cvd": "proteins", "vids": [3, 5]}
    {"ok": true, "columns": ["rid", ...], "rows": [...], "count": 2}

Supported ops: ``ping``, ``status``, ``stats`` (full per-process
observability snapshot), ``checkout``, ``query``, ``refresh`` (force
every session up to date), ``shutdown``.  Connections are handled by
daemon threads (``ThreadingTCPServer``); each request borrows a pooled
read-only session, so concurrent clients map onto concurrent store
sessions.  Errors come back as ``{"ok": false, "error": <human text>,
"code": <stable machine string>}`` on the same line — the connection
stays usable.  A request may carry ``"trace": "<id>"``; every span the
request touches (down to store refresh and executor work) then carries
that trace id in the structured log stream.
"""

from __future__ import annotations

import json
import os
import re
import socket
import socketserver
import threading
import time
import weakref
import zlib
from typing import Any

from repro.errors import ReproError
from repro.obs import metrics, trace

from repro.serve.manager import ServeManager

#: The op vocabulary; anything else buckets under the ``unknown`` label so
#: a misbehaving client cannot mint unbounded metric names.
KNOWN_OPS = ("ping", "status", "stats", "checkout", "query", "refresh", "shutdown")

_CAMEL = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def error_response(message: str, code: str) -> dict:
    """The wire shape of a failed request; charges the per-code counter."""
    metrics.registry().counter(f"serve.errors.{code}").inc()
    return {"ok": False, "error": message, "code": code}


def rows_checksum(rows: Any) -> int:
    """CRC-32 over a checkout's rows, stable across processes and runs.

    The body of a ``"rows": false`` response: the client gets integrity
    evidence (count + checksum) without the server JSON-encoding — or the
    client decoding — the payload, which would otherwise dominate a
    throughput measurement.  ``repr`` of tuples of plain values is
    deterministic (unlike ``hash``, which is salted per interpreter).
    """
    crc = 0
    for row in rows:
        crc = zlib.crc32(repr(tuple(row)).encode("utf-8"), crc)
    return crc


def checkout_response(
    columns: list, rows: list, lsn: int, include_rows: bool = True
) -> dict:
    """The wire shape of a successful checkout, shared by the threaded
    server and the pre-fork workers so the two front ends cannot drift."""
    response: dict = {"ok": True, "columns": columns, "count": len(rows), "lsn": lsn}
    if include_rows:
        response["rows"] = [list(row) for row in rows]
    else:
        response["checksum"] = rows_checksum(rows)
    return response


def error_code(exc: BaseException) -> str:
    """A stable machine-readable code for an exception.

    Derived from the class name — ``ReadOnlyError`` → ``read_only``,
    ``StoreLockedError`` → ``store_locked`` — so the wire codes track the
    exception hierarchy without a hand-maintained table.
    """
    name = type(exc).__name__
    if name.endswith("Error"):
        name = name[: -len("Error")]
    return _CAMEL.sub("_", name).lower() or "error"


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        registry = metrics.registry()
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            started = time.perf_counter()
            op_label = "unknown"
            try:
                request = json.loads(line.decode("utf-8"))
                op = request.get("op")
                if op in KNOWN_OPS:
                    op_label = op
                # The root span of the request: a client-supplied trace id
                # rides down through refresh/checkout/executor spans.
                with trace.span(
                    "serve.request", trace_id=request.get("trace"), op=op
                ):
                    response = self._dispatch(request)
            except (ValueError, KeyError, TypeError) as exc:
                response = self._error(f"bad request: {exc}", "bad_request")
            except ReproError as exc:
                response = self._error(str(exc), error_code(exc))
            except Exception as exc:  # keep the connection alive
                response = self._error(
                    f"internal error: {type(exc).__name__}: {exc}", "internal"
                )
            registry.counter(f"serve.requests.{op_label}").inc()
            registry.histogram(f"serve.request_seconds.{op_label}").observe(
                time.perf_counter() - started
            )
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()
            if response.get("bye"):
                # Trigger the shutdown only after the acknowledgement is
                # flushed — the other order races the process exit and the
                # client can see EOF instead of the reply.
                server: "_Server" = self.server  # type: ignore[assignment]
                server.request_shutdown()
                break

    @staticmethod
    def _error(message: str, code: str) -> dict:
        return error_response(message, code)

    def _dispatch(self, request: dict) -> dict:
        server: "_Server" = self.server  # type: ignore[assignment]
        manager = server.manager
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "status":
            return {"ok": True, "status": manager.status()}
        if op == "stats":
            return {"ok": True, "stats": manager.stats_snapshot()}
        if op == "checkout":
            columns, rows, lsn = manager.checkout_payload(
                request["cvd"], request["vids"], min_lsn=request.get("min_lsn")
            )
            return checkout_response(
                columns, rows, lsn, include_rows=request.get("rows", True)
            )
        if op == "query":
            result, lsn = manager.query_payload(
                request["sql"], request.get("params", ()),
                min_lsn=request.get("min_lsn"),
            )
            return {
                "ok": True,
                "columns": result.columns,
                "rows": [list(row) for row in result.rows],
                "count": result.rowcount,
                "lsn": lsn,
            }
        if op == "refresh":
            refreshed, busy = manager.refresh_all()
            return {"ok": True, "sessions": refreshed, "busy": busy}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        return self._error(f"unknown op {op!r}", "unknown_op")


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    manager: ServeManager

    def request_shutdown(self) -> None:
        # shutdown() joins the serve_forever loop, which must not run on
        # the calling thread; hand it to a helper thread so both handler
        # threads and signal handlers can trigger it safely.
        threading.Thread(target=self.shutdown, daemon=True).start()


class ServeServer:
    """Own a manager-backed TCP server; start/stop cleanly."""

    def __init__(
        self,
        manager: ServeManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.manager = manager
        self._server = _Server((host, port), _RequestHandler)
        self._server.manager = manager
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or the shutdown
        op) is called; the manager is closed on the way out."""
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()
            self.manager.close()

    def start(self) -> "ServeServer":
        """Serve on a background thread (tests and embedding)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None


def request(host: str, port: int, payload: dict, timeout: float = 30.0) -> dict:
    """One-shot client: send a request line, return the decoded response."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        with conn.makefile("rb") as reader:
            line = reader.readline()
    if not line:
        raise ConnectionError("server closed the connection without replying")
    return json.loads(line.decode("utf-8"))


#: Live client sockets in this process.  A pre-fork worker forked while
#: the host process holds open client connections inherits duplicate FDs
#: for them; those duplicates keep the TCP connections ESTABLISHED after
#: the real client closes, which pins the worker serving that connection
#: forever (and can self-deadlock a worker serving a connection whose
#: client end it inherited).  The registry lets the freshly forked child
#: close every inherited client socket before it starts serving.
_live_clients: "weakref.WeakSet[socket.socket]" = weakref.WeakSet()
_live_clients_lock = threading.Lock()
# Keep the registry consistent across fork: another thread may be mutating
# the WeakSet at the instant the supervisor forks a replacement worker.
os.register_at_fork(
    before=_live_clients_lock.acquire,
    after_in_parent=_live_clients_lock.release,
    after_in_child=_live_clients_lock.release,
)


def close_inherited_clients() -> int:
    """Close every live client socket (called by a forked worker child);
    returns how many were closed.  The parent's own sockets are untouched
    — closing a duplicate FD only drops this process's reference.

    ``detach()`` + ``os.close()`` rather than ``socket.close()``: each
    client holds a ``makefile()`` reader whose io-ref makes ``close()``
    defer the real FD close — exactly the deferral that must NOT happen
    here.  Detaching first also means the child's copy of the socket
    object can never double-close a since-reused FD from a destructor.
    """
    with _live_clients_lock:
        inherited = list(_live_clients)
    closed = 0
    for sock in inherited:
        try:
            fd = sock.detach()
        except OSError:  # pragma: no cover - already dead
            continue
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            closed += 1
    return closed


class ServeClient:
    """A persistent-connection client for request loops (benchmarks)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        # Register BEFORE connecting: a worker forked between connect()
        # and registration would inherit an invisible connected socket —
        # exactly the duplicate-FD pinning the registry exists to stop.
        # A child closing a not-yet-connected socket is harmless.
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        with _live_clients_lock:
            _live_clients.add(sock)
        try:
            sock.settimeout(timeout)
            sock.connect((host, port))
        except BaseException:
            with _live_clients_lock:
                _live_clients.discard(sock)
            sock.close()
            raise
        self._conn = sock
        self._reader = self._conn.makefile("rb")

    def request(self, payload: dict) -> dict:
        self._conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        with _live_clients_lock:
            _live_clients.discard(self._conn)
        self._reader.close()
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def serve(
    path: str,
    host: str = "127.0.0.1",
    port: int = 0,
    readers: int = 4,
    cache_capacity: int = 256,
    writer: bool = True,
    checkpoint_interval: int = 256,
    workers: int = 0,
    shared_cache: bool = True,
    respawn_limit: int = 16,
):
    """Build a server for ``orpheus serve`` (not yet started).

    ``workers=0`` (the default) builds the in-process threaded server
    (one writer + a reader-session pool).  ``workers=N`` builds the
    pre-fork :class:`~repro.serve.workers.PreforkServer` instead: N
    reader *processes* that inherit one loaded snapshot, always in
    follower mode (the writer, if any, lives in another process).
    """
    if workers:
        from repro.serve.workers import PreforkServer

        return PreforkServer(
            path,
            host=host,
            port=port,
            workers=workers,
            cache_capacity=cache_capacity,
            shared_cache=shared_cache,
            respawn_limit=respawn_limit,
        )
    manager = ServeManager(
        path,
        readers=readers,
        cache_capacity=cache_capacity,
        writer=writer,
        checkpoint_interval=checkpoint_interval,
    )
    try:
        return ServeServer(manager, host=host, port=port)
    except BaseException:
        manager.close()
        raise
