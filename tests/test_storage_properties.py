"""Property-based tests of SQL engine invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.engine import Database

values = st.integers(min_value=-50, max_value=50)
rows = st.lists(st.tuples(values, values), min_size=0, max_size=30)


def _load(rows_):
    db = Database()
    db.execute("CREATE TABLE t (a int, b int)")
    table = db.table("t")
    table.insert_many(rows_)
    return db


class TestFilterProperties:
    @given(rows, values)
    def test_where_partition(self, data, pivot):
        """WHERE a <= p and WHERE a > p partition the table."""
        db = _load(data)
        low = db.query("SELECT * FROM t WHERE a <= %s", (pivot,))
        high = db.query("SELECT * FROM t WHERE a > %s", (pivot,))
        assert sorted(low + high) == sorted(data)

    @given(rows)
    def test_count_matches_len(self, data):
        db = _load(data)
        assert db.query("SELECT count(*) FROM t") == [(len(data),)]

    @given(rows)
    def test_sum_matches_python(self, data):
        db = _load(data)
        expected = sum(a for a, _b in data) if data else None
        assert db.query("SELECT sum(a) FROM t") == [(expected,)]


class TestGroupByProperties:
    @given(rows)
    def test_group_counts_sum_to_total(self, data):
        db = _load(data)
        groups = db.query("SELECT a, count(*) FROM t GROUP BY a")
        assert sum(n for _a, n in groups) == len(data)
        assert len(groups) == len({a for a, _b in data})

    @given(rows)
    def test_group_sums_match_python(self, data):
        db = _load(data)
        groups = dict(db.query("SELECT a, sum(b) FROM t GROUP BY a"))
        for key in {a for a, _b in data}:
            assert groups[key] == sum(b for a, b in data if a == key)


class TestOrderingProperties:
    @given(rows)
    def test_order_by_is_sorted_and_permutation(self, data):
        db = _load(data)
        out = db.query("SELECT a, b FROM t ORDER BY a, b")
        assert out == sorted(data)

    @given(rows, st.integers(min_value=0, max_value=10))
    def test_limit_prefix_of_order(self, data, limit):
        db = _load(data)
        full = db.query("SELECT a, b FROM t ORDER BY a, b")
        limited = db.query(f"SELECT a, b FROM t ORDER BY a, b LIMIT {limit}")
        assert limited == full[:limit]


class TestDMLProperties:
    @given(rows, values)
    def test_delete_then_count(self, data, pivot):
        db = _load(data)
        deleted = db.execute("DELETE FROM t WHERE a = %s", (pivot,)).rowcount
        assert deleted == sum(1 for a, _b in data if a == pivot)
        assert db.query("SELECT count(*) FROM t") == [(len(data) - deleted,)]

    @given(rows)
    @settings(max_examples=25)
    def test_update_preserves_cardinality(self, data):
        db = _load(data)
        db.execute("UPDATE t SET b = b + 1")
        assert db.query("SELECT count(*) FROM t") == [(len(data),)]
        assert sorted(db.query("SELECT a FROM t")) == sorted((a,) for a, _b in data)

    @given(rows)
    def test_select_into_roundtrip(self, data):
        db = _load(data)
        db.execute("SELECT * INTO copy FROM t")
        assert sorted(db.query("SELECT * FROM copy")) == sorted(data)


class TestDistinctProperties:
    @given(rows)
    def test_distinct_removes_duplicates_only(self, data):
        db = _load(data)
        out = db.query("SELECT DISTINCT a, b FROM t")
        assert sorted(out) == sorted(set(data))
