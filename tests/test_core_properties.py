"""Property-based tests of versioning invariants (hypothesis).

Random sequences of edits (update / insert / delete) are applied through
the real checkout-commit cycle, then system-level invariants are checked:
round-tripping, record immutability, membership consistency, and
equivalence between the bulk and incremental ingest paths.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cvd import CVD
from repro.storage.engine import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType
from repro.workloads import load_workload

SCHEMA = TableSchema(
    [Column("k", DataType.INTEGER), Column("v", DataType.INTEGER)],
    ("k",),
)

# One edit step: for each existing row, an action; plus up to 3 inserts.
edit_steps = st.lists(
    st.tuples(
        st.sampled_from(["keep", "update", "delete"]),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=1,
    max_size=8,
)


def apply_edits(rows, step, next_key):
    """Interpret an edit step over (k, v) data rows."""
    out = []
    for (action, value), row in zip(step, rows):
        if action == "keep":
            out.append(row)
        elif action == "update":
            out.append((row[0], row[1], value))  # same rid slot, new v
    # Unmatched rows are kept.
    out.extend(rows[len(step) :])
    inserts = max(0, 3 - len(step) % 4)
    for i in range(inserts):
        out.append((None, next_key + i, 0))
    return out


class TestCommitCheckoutRoundtrip:
    @given(st.lists(edit_steps, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_checkout_returns_exactly_what_was_committed(self, history):
        cvd = CVD(Database(), "p", SCHEMA)
        cvd.init_version([(k, k * 10) for k in range(5)])
        tip = 1
        next_key = 1000
        for step in history:
            rows = cvd.checkout_rows([tip])
            staged = []
            for (action, value), row in zip(step, rows):
                if action == "delete":
                    continue
                if action == "update":
                    staged.append((row[0], row[1], value))
                else:
                    staged.append(row)
            staged.extend(rows[len(step) :])
            staged.append((None, next_key, 7))
            next_key += 1
            committed_data = sorted(tuple(r[1:]) for r in staged)
            tip = cvd.commit_rows((tip,), staged)
            fetched = sorted(tuple(r[1:]) for r in cvd.checkout_rows([tip]))
            assert fetched == committed_data

    @given(st.lists(edit_steps, min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_old_versions_never_change(self, history):
        """Record immutability: committing never disturbs prior versions."""
        cvd = CVD(Database(), "p", SCHEMA)
        cvd.init_version([(k, k * 10) for k in range(5)])
        snapshots = {1: sorted(cvd.checkout_rows([1]))}
        tip = 1
        next_key = 1000
        for step in history:
            rows = cvd.checkout_rows([tip])
            staged = [
                (row[0], row[1], value) if action == "update" else row
                for (action, value), row in zip(step, rows)
                if action != "delete"
            ]
            staged.extend(rows[len(step) :])
            staged.append((None, next_key, 7))
            next_key += 1
            tip = cvd.commit_rows((tip,), staged)
            snapshots[tip] = sorted(cvd.checkout_rows([tip]))
            for vid, expected in snapshots.items():
                assert sorted(cvd.checkout_rows([vid])) == expected


class TestMembershipInvariants:
    @given(st.integers(min_value=2, max_value=40), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_generated_workload_invariants(self, num_versions, seed):
        from repro.workloads import SciParameters, generate_sci

        workload = generate_sci(
            SciParameters(
                num_versions=num_versions,
                num_branches=min(3, num_versions - 1),
                inserts_per_version=8,
                seed=seed,
            )
        )
        cvd = load_workload(Database(), "w", workload)
        # Every version's membership is inherited-from-parents plus its
        # fresh rids; edge weights equal true intersections.
        for version in workload.versions:
            members = cvd.member_rids(version.vid)
            assert len(members) == len(version.members)
            for parent in version.parents:
                expected = len(cvd.member_rids(parent) & members)
                assert cvd.graph.edge_weight(parent, version.vid) == expected

    def test_bipartite_counts_match_sql_counts(self, sci_cvd):
        """The Python-side membership mirrors the versioning table."""
        total_sql = sci_cvd.db.query(
            "SELECT sum(cardinality(rlist)) FROM sci__versions"
        )[0][0]
        assert total_sql == sci_cvd.bipartite_edge_count


class TestBulkIncrementalEquivalence:
    @given(st.integers(min_value=2, max_value=25), st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_paths_agree_on_sci(self, num_versions, seed):
        from repro.workloads import SciParameters, generate_sci

        workload = generate_sci(
            SciParameters(num_versions, min(2, num_versions - 1), 6, seed=seed)
        )
        bulk = load_workload(Database(), "w", workload, bulk=True)
        step = load_workload(Database(), "w", workload, bulk=False)
        for vid in bulk.graph.version_ids():
            assert sorted(bulk.model.fetch_version(vid)) == sorted(
                step.model.fetch_version(vid)
            )
        assert bulk.membership == step.membership

    @given(st.integers(min_value=4, max_value=25), st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_paths_agree_on_cur(self, num_versions, seed):
        from repro.workloads import CurParameters, generate_cur

        workload = generate_cur(
            CurParameters(num_versions, min(3, num_versions - 1), 6, seed=seed)
        )
        bulk = load_workload(Database(), "w", workload, bulk=True)
        step = load_workload(Database(), "w", workload, bulk=False)
        for vid in bulk.graph.version_ids():
            assert sorted(bulk.model.fetch_version(vid)) == sorted(
                step.model.fetch_version(vid)
            )


class TestDiffProperties:
    @given(st.integers(min_value=2, max_value=20), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_diff_antisymmetric_and_consistent(self, num_versions, seed):
        from repro.workloads import SciParameters, generate_sci

        workload = generate_sci(
            SciParameters(num_versions, min(2, num_versions - 1), 5, seed=seed)
        )
        cvd = load_workload(Database(), "w", workload)
        vids = cvd.graph.version_ids()
        a, b = vids[0], vids[-1]
        only_a, only_b = cvd.diff(a, b)
        flipped_b, flipped_a = cvd.diff(b, a)
        assert sorted(only_a) == sorted(flipped_a)
        assert sorted(only_b) == sorted(flipped_b)
        assert len(only_a) == len(cvd.member_rids(a) - cvd.member_rids(b))
