"""Unit + property tests for the int-array operators (Section 3.1's tools)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage import arrays

int_lists = st.lists(st.integers(min_value=0, max_value=200), max_size=30)


class TestContainment:
    def test_contained_by_basic(self):
        # ARRAY[v1] <@ vlist: the checkout predicate.
        assert arrays.contained_by((1,), (1, 2, 3))
        assert not arrays.contained_by((4,), (1, 2, 3))

    def test_empty_array_contained_everywhere(self):
        assert arrays.contained_by((), ())
        assert arrays.contains((1,), ())

    @given(int_lists, int_lists)
    def test_containment_matches_set_semantics(self, inner, outer):
        assert arrays.contained_by(tuple(inner), tuple(outer)) == set(
            inner
        ).issubset(outer)


class TestAppendConcat:
    def test_append_copies(self):
        original = (1, 2)
        appended = arrays.append(original, 3)
        assert appended == (1, 2, 3)
        assert original == (1, 2)

    def test_concat(self):
        assert arrays.concat((1,), (2, 3)) == (1, 2, 3)

    @given(int_lists, st.integers(min_value=0, max_value=99))
    def test_append_grows_by_one(self, values, extra):
        assert len(arrays.append(tuple(values), extra)) == len(values) + 1


class TestRemoveUnnest:
    def test_remove_all_occurrences(self):
        assert arrays.remove((1, 2, 1, 3), 1) == (2, 3)

    def test_unnest_yields_elements(self):
        assert list(arrays.unnest((5, 6))) == [5, 6]

    @given(int_lists)
    def test_unnest_roundtrip(self, values):
        array = arrays.make_array(values)
        assert tuple(arrays.unnest(array)) == array


class TestOverlapIntersect:
    def test_overlap(self):
        assert arrays.overlap((1, 2), (2, 3))
        assert not arrays.overlap((1,), (2,))
        assert not arrays.overlap((), (1, 2))

    def test_intersect_preserves_left_order(self):
        assert arrays.intersect((3, 1, 2), (2, 3)) == (3, 2)

    @given(int_lists, int_lists)
    def test_overlap_matches_set_semantics(self, a, b):
        assert arrays.overlap(tuple(a), tuple(b)) == bool(set(a) & set(b))

    def test_array_length(self):
        assert arrays.array_length((1, 2, 3)) == 3


class TestConversionHoisting:
    """The generic contains/overlap paths rebuild a probe set per call;
    compiled predicates hoist a constant operand's conversion to once per
    statement.  ``arrays.conversion_count`` observes exactly those
    per-call ``set(...)`` builds."""

    BIG = 1 << 30  # far beyond the bitmapizable rid range
    N_ROWS = 40

    def _db(self, mode):
        from repro.storage.engine import Database

        db = Database(exec_mode=mode)
        db.execute("CREATE TABLE t (id int, arr int[])")
        for i in range(self.N_ROWS):
            db.execute(
                "INSERT INTO t VALUES (%s, %s)",
                (i, (self.BIG + i, self.BIG + i + 1, self.BIG + i + 2)),
            )
        return db

    SQL = (
        "SELECT count(*) FROM t WHERE ARRAY[{0}, {1}, {2}, {3}] @> arr"
    ).format(BIG, BIG + 1, BIG + 2, BIG + 3)

    def test_interpreted_generic_path_converts_per_row(self):
        db = self._db("interpreted")
        before = arrays.conversion_count
        rows = db.query(self.SQL)
        assert rows == [(2,)]  # rows 0 and 1 are covered
        assert arrays.conversion_count - before >= self.N_ROWS

    def test_compiled_predicate_hoists_the_conversion(self):
        db = self._db("compiled")
        before = arrays.conversion_count
        rows = db.query(self.SQL)
        assert rows == [(2,)]
        # One statement-level hoist at most — never one per evaluated row.
        assert arrays.conversion_count - before == 0

    def test_columnar_multi_block_scan_keeps_the_hoist(self):
        # The columnar pipeline compiles its predicate once per statement,
        # so a scan spanning several blocks must still pay zero per-row
        # (or per-block) probe-set conversions.
        from repro.storage.engine import Database

        db = Database(exec_mode="compiled")
        db.execute("CREATE TABLE big (id int, arr int[])")
        values = ", ".join(
            f"({i}, ARRAY[{self.BIG + i}, {self.BIG + i + 1}, "
            f"{self.BIG + i + 2}])"
            for i in range(2500)
        )
        db.execute(f"INSERT INTO big VALUES {values}")
        db.reset_stats()
        before = arrays.conversion_count
        rows = db.query(self.SQL.replace("FROM t", "FROM big"))
        assert rows == [(2,)]
        assert db.stats.blocks_scanned >= 2  # really a multi-block scan
        assert arrays.conversion_count - before == 0

    def test_counter_increments_on_direct_generic_calls(self):
        before = arrays.conversion_count
        assert arrays.contains((1, 2, 3, 4), (1, 2, 3))
        assert arrays.overlap((1, 2, 3), (3, 4, 5))
        assert arrays.conversion_count - before == 2
