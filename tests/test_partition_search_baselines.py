"""Tests for delta binary search and the AGGLO / KMEANS baselines."""

import pytest

from repro.errors import InfeasibleBudgetError, PartitionError
from repro.partition.agglo import agglo_budget_search, agglo_partition
from repro.partition.bipartite import BipartiteGraph
from repro.partition.dag_reduction import reduce_to_tree
from repro.partition.delta_search import search_delta
from repro.partition.kmeans import kmeans_budget_search, kmeans_partition


@pytest.fixture
def sci(sci_cvd):
    bip = BipartiteGraph.from_cvd(sci_cvd)
    tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
    return bip, tree


class TestDeltaSearch:
    def test_budget_respected(self, sci):
        bip, tree = sci
        for multiple in (1.2, 1.5, 2.0, 3.0):
            result = search_delta(tree, multiple * bip.num_records, bip)
            assert result.storage_cost <= multiple * bip.num_records

    def test_larger_budget_no_worse_checkout(self, sci):
        bip, tree = sci
        tight = search_delta(tree, 1.2 * bip.num_records, bip)
        loose = search_delta(tree, 3.0 * bip.num_records, bip)
        assert loose.checkout_cost <= tight.checkout_cost + 1e-9

    def test_infeasible_budget_raises(self, sci):
        bip, tree = sci
        with pytest.raises(InfeasibleBudgetError):
            search_delta(tree, bip.num_records - 1, bip)

    def test_exact_minimum_budget_single_partition(self, sci):
        bip, tree = sci
        result = search_delta(tree, bip.num_records, bip)
        assert result.storage_cost == bip.num_records

    def test_works_without_bipartite(self, sci):
        _bip, tree = sci
        result = search_delta(tree, 2.0 * tree.tree_record_count)
        assert result.storage_cost <= 2.0 * tree.tree_record_count

    def test_dag_workload(self, cur_cvd):
        bip = BipartiteGraph.from_cvd(cur_cvd)
        tree = reduce_to_tree(cur_cvd.graph, bip.num_records)
        result = search_delta(tree, 2.0 * bip.num_records, bip)
        assert result.storage_cost <= 2.0 * bip.num_records
        assert result.partitioning.version_ids() == set(cur_cvd.membership)


class TestAgglo:
    def test_capacity_respected(self, sci):
        bip, _tree = sci
        capacity = bip.num_records / 2
        partitioning = agglo_partition(bip, capacity)
        for group in partitioning.groups:
            assert len(bip.partition_records(group)) <= capacity

    def test_huge_capacity_merges_a_lot(self, sci):
        bip, _tree = sci
        few = agglo_partition(bip, capacity=bip.num_records * 10)
        many = agglo_partition(bip, capacity=bip.num_edges / bip.num_versions)
        assert len(few) < len(many)

    def test_budget_search_feasible(self, sci):
        bip, _tree = sci
        gamma = 2.0 * bip.num_records
        partitioning, checkout = agglo_budget_search(bip, gamma)
        assert bip.storage_cost(partitioning) <= gamma
        assert checkout == bip.checkout_cost(partitioning)

    def test_invalid_capacity(self, sci):
        bip, _tree = sci
        with pytest.raises(PartitionError):
            agglo_partition(bip, capacity=0)

    def test_deterministic_given_seed(self, sci):
        bip, _tree = sci
        a = agglo_partition(bip, bip.num_records, seed=3)
        b = agglo_partition(bip, bip.num_records, seed=3)
        assert a.groups == b.groups


class TestKmeans:
    def test_k_bounds(self, sci):
        bip, _tree = sci
        with pytest.raises(PartitionError):
            kmeans_partition(bip, 0)
        with pytest.raises(PartitionError):
            kmeans_partition(bip, bip.num_versions + 1)

    def test_partition_count_at_most_k(self, sci):
        bip, _tree = sci
        partitioning = kmeans_partition(bip, 5)
        assert 1 <= len(partitioning) <= 5
        assert partitioning.version_ids() == set(bip.version_ids())

    def test_more_k_more_storage_less_checkout(self, sci):
        bip, _tree = sci
        small = kmeans_partition(bip, 2)
        large = kmeans_partition(bip, 12)
        assert bip.storage_cost(small) <= bip.storage_cost(large)
        assert bip.checkout_cost(small) >= bip.checkout_cost(large)

    def test_budget_search_feasible(self, sci):
        bip, _tree = sci
        gamma = 2.0 * bip.num_records
        partitioning, checkout = kmeans_budget_search(bip, gamma)
        assert bip.storage_cost(partitioning) <= gamma

    def test_k_equals_one_is_single_partition(self, sci):
        bip, _tree = sci
        partitioning = kmeans_partition(bip, 1)
        assert len(partitioning) == 1
        assert bip.storage_cost(partitioning) == bip.num_records


class TestLyreSplitDominance:
    """Section 5.2's headline: same budget, LyreSplit's checkout cost is no
    worse than the baselines' (at benchmark scale it is strictly better)."""

    def test_lyresplit_beats_or_ties_baselines(self, sci):
        bip, tree = sci
        gamma = 1.5 * bip.num_records
        ours = search_delta(tree, gamma, bip)
        _, agglo_cost = agglo_budget_search(bip, gamma)
        _, kmeans_cost = kmeans_budget_search(bip, gamma)
        assert ours.checkout_cost <= agglo_cost + 1e-9
        assert ours.checkout_cost <= kmeans_cost * 1.05 + 1e-9
