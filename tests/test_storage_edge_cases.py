"""Edge cases and failure injection for the SQL engine."""

import pytest

from repro.errors import (
    CatalogError,
    ConstraintViolationError,
    ExecutionError,
    SQLSyntaxError,
)


class TestExpressionEdges:
    def test_division_by_zero(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ExecutionError):
            db.query("SELECT a / 0 FROM t")

    def test_three_valued_logic_and_or(self, db):
        db.execute("CREATE TABLE t (a int, b int)")
        db.execute("INSERT INTO t VALUES (1, NULL)")
        # NULL OR TRUE is TRUE; NULL AND TRUE is unknown (filtered).
        assert db.query("SELECT a FROM t WHERE b = 1 OR a = 1") == [(1,)]
        assert db.query("SELECT a FROM t WHERE b = 1 AND a = 1") == []

    def test_not_of_null_is_null(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (NULL)")
        assert db.query("SELECT * FROM t WHERE NOT a = 1") == []

    def test_coalesce(self, db):
        assert db.query("SELECT coalesce(NULL, NULL, 3)") == [(3,)]

    def test_string_concat_and_like_escapes(self, db):
        assert db.query("SELECT 'a' || 'b'") == [("ab",)]
        db.execute("CREATE TABLE t (s text)")
        db.execute("INSERT INTO t VALUES ('100%'), ('100x')")
        # % inside the pattern is a wildcard; dots must not be regex-magic.
        assert len(db.query("SELECT * FROM t WHERE s LIKE '100%'")) == 2
        db.execute("INSERT INTO t VALUES ('axb'), ('a.b')")
        assert db.query("SELECT * FROM t WHERE s LIKE 'a.b'") == [("a.b",)]

    def test_in_with_null_operand(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (NULL)")
        assert db.query("SELECT * FROM t WHERE a IN (1, 2)") == []

    def test_ambiguous_column_raises(self, db):
        db.execute("CREATE TABLE a (x int)")
        db.execute("CREATE TABLE b (x int)")
        db.execute("INSERT INTO a VALUES (1)")
        db.execute("INSERT INTO b VALUES (1)")
        with pytest.raises(ExecutionError):
            db.query("SELECT x FROM a, b")


class TestAggregateEdges:
    def test_group_by_null_key(self, db):
        db.execute("CREATE TABLE t (k int, v int)")
        db.execute("INSERT INTO t VALUES (NULL, 1), (NULL, 2), (3, 3)")
        rows = dict(db.query("SELECT k, count(*) FROM t GROUP BY k"))
        assert rows[None] == 2 and rows[3] == 1

    def test_having_without_group_by(self, db):
        db.execute("CREATE TABLE t (v int)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.query("SELECT sum(v) FROM t HAVING count(*) > 5") == []
        assert db.query("SELECT sum(v) FROM t HAVING count(*) = 2") == [(3,)]

    def test_aggregate_outside_group_context_raises(self, db):
        db.execute("CREATE TABLE t (v int)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ExecutionError):
            db.query("SELECT v FROM t WHERE sum(v) > 0")

    def test_star_with_group_by_rejected(self, db):
        db.execute("CREATE TABLE t (v int)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ExecutionError):
            db.query("SELECT * FROM t GROUP BY v")


class TestUnnestEdges:
    def test_unnest_empty_array_yields_nothing(self, db):
        db.execute("CREATE TABLE t (a int[])")
        db.execute("INSERT INTO t VALUES (ARRAY[])")
        assert db.query("SELECT unnest(a) FROM t") == []

    def test_unnest_null_array(self, db):
        db.execute("CREATE TABLE t (a int[])")
        db.execute("INSERT INTO t VALUES (NULL)")
        assert db.query("SELECT unnest(a) FROM t") == []

    def test_parallel_unnest_zips(self, db):
        db.execute("CREATE TABLE t (a int[], b int[])")
        db.execute("INSERT INTO t VALUES (ARRAY[1,2,3], ARRAY[10,20])")
        rows = db.query("SELECT unnest(a), unnest(b) FROM t")
        assert rows == [(1, 10), (2, 20), (3, None)]


class TestDMLFailureInjection:
    def test_insert_wrong_arity(self, db):
        db.execute("CREATE TABLE t (a int, b int)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t (a) VALUES (1, 2)")

    def test_update_violating_unique_rolls_nothing_weird(self, db):
        db.execute("CREATE TABLE t (a int PRIMARY KEY, b int)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        with pytest.raises(ConstraintViolationError):
            db.execute("UPDATE t SET a = 1 WHERE a = 2")
        # The conflicting row is unchanged and still readable.
        assert sorted(db.query("SELECT a FROM t")) == [(1,), (2,)]

    def test_select_into_existing_table_rejected(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE TABLE u (a int)")
        from repro.errors import DuplicateObjectError

        with pytest.raises(DuplicateObjectError):
            db.execute("SELECT * INTO u FROM t")

    def test_type_coercion_failure_on_insert(self, db):
        db.execute("CREATE TABLE t (a int)")
        from repro.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO t VALUES ('not-a-number')")


class TestJoinMethodEquivalenceOnCheckoutSQL:
    """The exact Table 1 checkout query under all three join methods."""

    @pytest.fixture
    def loaded(self, db):
        db.execute("CREATE TABLE d (rid int PRIMARY KEY, v int)")
        db.execute("CREATE TABLE vt (vid int PRIMARY KEY, rlist int[])")
        for rid in range(1, 31):
            db.execute("INSERT INTO d VALUES (%s, %s)", (rid, rid * 2))
        db.execute("INSERT INTO vt VALUES (1, %s)", (tuple(range(5, 25)),))
        return db

    CHECKOUT = (
        "SELECT d.rid, d.v FROM d, "
        "(SELECT unnest(rlist) AS rt FROM vt WHERE vid = 1) AS tmp "
        "WHERE d.rid = tmp.rt"
    )

    def test_all_methods_agree(self, loaded):
        results = {}
        for method in ("hash", "merge", "inl"):
            loaded.join_method = method
            results[method] = sorted(loaded.query(self.CHECKOUT))
        assert results["hash"] == results["merge"] == results["inl"]
        assert len(results["hash"]) == 20

    def test_inl_avoids_scanning_data_table(self, loaded):
        loaded.join_method = "inl"
        loaded.reset_stats()
        loaded.query(self.CHECKOUT)
        # 20 probes + matched rows; nothing near the 30-row full scan x2.
        assert loaded.stats.index_probes >= 20
        assert loaded.stats.records_scanned <= 25


class TestCatalogEdges:
    def test_table_names_sorted(self, db):
        db.execute("CREATE TABLE zz (a int)")
        db.execute("CREATE TABLE aa (a int)")
        assert db.table_names() == ["aa", "zz"]

    def test_create_index_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX i ON ghost (a)")

    def test_drop_missing_index(self, db):
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(CatalogError):
            db.execute("DROP INDEX ghost ON t")

    def test_garbage_sql(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("SELEC * FROM t")

    def test_empty_result_metadata(self, db):
        db.execute("CREATE TABLE t (a int, b text)")
        result = db.execute("SELECT a, b FROM t")
        assert result.columns == ["a", "b"]
        assert result.rows == []
        assert result.scalar() is None
