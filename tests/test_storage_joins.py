"""Unit + property tests for the three join algorithms (Appendix D.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.storage.iostats import IOStats
from repro.storage.joins import hash_join, index_nested_loop_join, merge_join
from repro.storage.schema import Column, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType

LEFT = [(1, "a"), (2, "b"), (2, "c"), (4, "d")]
RIGHT = [(2, "x"), (2, "y"), (3, "z"), (4, "w")]
EXPECTED = sorted(
    [
        (2, "b", 2, "x"),
        (2, "b", 2, "y"),
        (2, "c", 2, "x"),
        (2, "c", 2, "y"),
        (4, "d", 4, "w"),
    ]
)


def _inner_table(rows):
    table = Table(
        "inner",
        TableSchema(
            [Column("k", DataType.INTEGER), Column("v", DataType.TEXT)]
        ),
        enforce_primary_key=False,
    )
    table.create_index("by_k", ["k"])
    table.insert_many(rows)
    return table


class TestHashJoin:
    def test_basic(self):
        out = sorted(hash_join(LEFT, [0], RIGHT, [0]))
        assert out == EXPECTED

    def test_build_side_order_flag(self):
        out = sorted(hash_join(RIGHT, [0], LEFT, [0], build_side_first=False))
        assert out == EXPECTED

    def test_null_keys_never_match(self):
        out = list(hash_join([(None, "a")], [0], [(None, "b")], [0]))
        assert out == []

    def test_build_rows_counted(self):
        stats = IOStats()
        list(hash_join(LEFT, [0], RIGHT, [0], stats=stats))
        assert stats.hash_build_rows == len(LEFT)


class TestMergeJoin:
    def test_basic_unsorted(self):
        out = sorted(merge_join(LEFT, [0], RIGHT, [0]))
        assert out == EXPECTED

    def test_assume_sorted_skips_sort_accounting(self):
        stats = IOStats()
        left = sorted(LEFT)
        right = sorted(RIGHT)
        out = sorted(merge_join(left, [0], right, [0], stats=stats, assume_sorted=True))
        assert out == EXPECTED
        assert stats.sort_rows == 0

    def test_sort_accounting(self):
        stats = IOStats()
        list(merge_join(LEFT, [0], RIGHT, [0], stats=stats))
        assert stats.sort_rows == len(LEFT) + len(RIGHT)

    def test_duplicate_runs_on_both_sides(self):
        left = [(1, "a"), (1, "b")]
        right = [(1, "x"), (1, "y"), (1, "z")]
        assert len(list(merge_join(left, [0], right, [0]))) == 6


class TestIndexNestedLoopJoin:
    def test_basic(self):
        inner = _inner_table(RIGHT)
        out = sorted(index_nested_loop_join(LEFT, [0], inner, ["k"]))
        assert out == EXPECTED

    def test_probes_counted(self):
        inner = _inner_table(RIGHT)
        inner.stats.reset()
        list(index_nested_loop_join(LEFT, [0], inner, ["k"]))
        assert inner.stats.index_probes == len(LEFT)

    def test_missing_index_raises(self):
        inner = _inner_table(RIGHT)
        with pytest.raises(ExecutionError):
            list(index_nested_loop_join(LEFT, [0], inner, ["v"]))


keys = st.integers(min_value=0, max_value=8)
rows = st.lists(st.tuples(keys, st.integers(min_value=0, max_value=100)), max_size=25)


class TestJoinEquivalence:
    """All three algorithms must produce identical multisets of rows —
    the invariant Fig. 19's cross-algorithm comparison rests on."""

    @given(rows, rows)
    def test_hash_equals_merge(self, left, right):
        expected = sorted(hash_join(left, [0], right, [0]))
        assert sorted(merge_join(left, [0], right, [0])) == expected

    @given(rows, rows)
    def test_hash_equals_nested_loop_reference(self, left, right):
        reference = sorted(
            lrow + rrow
            for lrow in left
            for rrow in right
            if lrow[0] == rrow[0]
        )
        assert sorted(hash_join(left, [0], right, [0])) == reference

    @given(rows, rows)
    def test_inl_equals_reference(self, left, right):
        inner = Table(
            "inner",
            TableSchema(
                [Column("k", DataType.INTEGER), Column("v", DataType.INTEGER)]
            ),
            enforce_primary_key=False,
        )
        inner.create_index("by_k", ["k"])
        inner.insert_many(right)
        reference = sorted(
            lrow + rrow
            for lrow in left
            for rrow in right
            if lrow[0] == rrow[0]
        )
        got = sorted(index_nested_loop_join(left, [0], inner, ["k"]))
        assert got == reference
