"""Unit + property tests for the three join algorithms (Appendix D.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.storage.iostats import IOStats
from repro.storage.joins import hash_join, index_nested_loop_join, merge_join
from repro.storage.schema import Column, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType

LEFT = [(1, "a"), (2, "b"), (2, "c"), (4, "d")]
RIGHT = [(2, "x"), (2, "y"), (3, "z"), (4, "w")]
EXPECTED = sorted(
    [
        (2, "b", 2, "x"),
        (2, "b", 2, "y"),
        (2, "c", 2, "x"),
        (2, "c", 2, "y"),
        (4, "d", 4, "w"),
    ]
)


def _inner_table(rows):
    table = Table(
        "inner",
        TableSchema(
            [Column("k", DataType.INTEGER), Column("v", DataType.TEXT)]
        ),
        enforce_primary_key=False,
    )
    table.create_index("by_k", ["k"])
    table.insert_many(rows)
    return table


class TestHashJoin:
    def test_basic(self):
        out = sorted(hash_join(LEFT, [0], RIGHT, [0]))
        assert out == EXPECTED

    def test_build_side_order_flag(self):
        out = sorted(hash_join(RIGHT, [0], LEFT, [0], build_side_first=False))
        assert out == EXPECTED

    def test_null_keys_never_match(self):
        out = list(hash_join([(None, "a")], [0], [(None, "b")], [0]))
        assert out == []

    def test_build_rows_counted(self):
        stats = IOStats()
        list(hash_join(LEFT, [0], RIGHT, [0], stats=stats))
        assert stats.hash_build_rows == len(LEFT)


class TestMergeJoin:
    def test_basic_unsorted(self):
        out = sorted(merge_join(LEFT, [0], RIGHT, [0]))
        assert out == EXPECTED

    def test_assume_sorted_skips_sort_accounting(self):
        stats = IOStats()
        left = sorted(LEFT)
        right = sorted(RIGHT)
        out = sorted(merge_join(left, [0], right, [0], stats=stats, assume_sorted=True))
        assert out == EXPECTED
        assert stats.sort_rows == 0

    def test_sort_accounting(self):
        stats = IOStats()
        list(merge_join(LEFT, [0], RIGHT, [0], stats=stats))
        assert stats.sort_rows == len(LEFT) + len(RIGHT)

    def test_duplicate_runs_on_both_sides(self):
        left = [(1, "a"), (1, "b")]
        right = [(1, "x"), (1, "y"), (1, "z")]
        assert len(list(merge_join(left, [0], right, [0]))) == 6


class TestIndexNestedLoopJoin:
    def test_basic(self):
        inner = _inner_table(RIGHT)
        out = sorted(index_nested_loop_join(LEFT, [0], inner, ["k"]))
        assert out == EXPECTED

    def test_probes_counted(self):
        inner = _inner_table(RIGHT)
        inner.stats.reset()
        list(index_nested_loop_join(LEFT, [0], inner, ["k"]))
        assert inner.stats.index_probes == len(LEFT)

    def test_missing_index_raises(self):
        inner = _inner_table(RIGHT)
        with pytest.raises(ExecutionError):
            list(index_nested_loop_join(LEFT, [0], inner, ["v"]))


keys = st.integers(min_value=0, max_value=8)
rows = st.lists(st.tuples(keys, st.integers(min_value=0, max_value=100)), max_size=25)


class TestJoinEquivalence:
    """All three algorithms must produce identical multisets of rows —
    the invariant Fig. 19's cross-algorithm comparison rests on."""

    @given(rows, rows)
    def test_hash_equals_merge(self, left, right):
        expected = sorted(hash_join(left, [0], right, [0]))
        assert sorted(merge_join(left, [0], right, [0])) == expected

    @given(rows, rows)
    def test_hash_equals_nested_loop_reference(self, left, right):
        reference = sorted(
            lrow + rrow
            for lrow in left
            for rrow in right
            if lrow[0] == rrow[0]
        )
        assert sorted(hash_join(left, [0], right, [0])) == reference

    @given(rows, rows)
    def test_inl_equals_reference(self, left, right):
        inner = Table(
            "inner",
            TableSchema(
                [Column("k", DataType.INTEGER), Column("v", DataType.INTEGER)]
            ),
            enforce_primary_key=False,
        )
        inner.create_index("by_k", ["k"])
        inner.insert_many(right)
        reference = sorted(
            lrow + rrow
            for lrow in left
            for rrow in right
            if lrow[0] == rrow[0]
        )
        got = sorted(index_nested_loop_join(left, [0], inner, ["k"]))
        assert got == reference


class TestSemiJoinRewrite:
    """The planner's compiled-only semi-join elimination: when nothing
    downstream references the hash join's build side and the build keys
    are unique, the join collapses into an IN-set filter on the (still
    lazy) probe scan.  Results, output order, and the gated counters
    (``records_scanned``, ``hash_build_rows``) must be indistinguishable
    from the reference join; ``blocks_scanned > 0`` is the tell that the
    probe scan stayed lazy (the reference join materializes it first)."""

    N = 300

    def _db(self, mode):
        from repro.storage.engine import Database

        db = Database(exec_mode=mode)
        db.execute("CREATE TABLE d (rid int, a1 int, a2 text)")
        for rid in range(self.N):
            db.execute(
                "INSERT INTO d VALUES (%s, %s, %s)",
                (rid, (rid * 13) % 50, f"t{rid % 7}"),
            )
        db.execute("CREATE TABLE v (vid int, rlist int[])")
        db.execute("CREATE INDEX v_vid ON v (vid)")
        rlist = tuple(rid for rid in range(self.N) if rid % 3 != 0)
        db.execute("INSERT INTO v VALUES (%s, %s)", (1, rlist))
        db.execute("CREATE TABLE dup (k int, z int)")
        for row in [(1, 10), (1, 11), (2, 20)]:
            db.execute("INSERT INTO dup VALUES (%s, %s)", row)
        return db

    IDIOM = (
        "SELECT d.rid, d.a1 FROM d, (SELECT unnest(rlist) AS rt FROM v "
        "WHERE vid = 1) AS tmp WHERE d.rid = tmp.rt AND d.a1 > 10"
    )

    def test_rewrite_matches_reference_rows_and_order(self):
        compiled = self._db("compiled")
        interpreted = self._db("interpreted")
        assert compiled.query(self.IDIOM) == interpreted.query(self.IDIOM)

    def test_rewrite_keeps_gated_counters_identical(self):
        observed = {}
        for mode in ("compiled", "interpreted"):
            db = self._db(mode)
            db.reset_stats()
            db.query(self.IDIOM)
            observed[mode] = (
                db.stats.records_scanned,
                db.stats.index_probes,
                db.stats.hash_build_rows,
            )
        assert observed["compiled"] == observed["interpreted"]

    def test_rewrite_keeps_the_probe_scan_lazy(self):
        db = self._db("compiled")
        db.reset_stats()
        db.query(self.IDIOM)
        assert db.stats.blocks_scanned > 0

    @pytest.mark.parametrize(
        "sql",
        [
            # Build side projected: the join must survive.
            "SELECT d.rid, tmp.rt FROM d, (SELECT unnest(rlist) AS rt "
            "FROM v WHERE vid = 1) AS tmp WHERE d.rid = tmp.rt "
            "ORDER BY d.rid LIMIT 9",
            # Star projection expands both sides.
            "SELECT * FROM d, (SELECT unnest(rlist) AS rt FROM v "
            "WHERE vid = 1) AS tmp WHERE d.rid = tmp.rt LIMIT 9",
            # Build side referenced from ORDER BY only.
            "SELECT d.rid FROM d, (SELECT unnest(rlist) AS rt FROM v "
            "WHERE vid = 1) AS tmp WHERE d.rid = tmp.rt "
            "ORDER BY tmp.rt DESC LIMIT 9",
            # Duplicate build keys multiply probe rows.
            "SELECT d.rid, d.a1 FROM d, dup WHERE d.rid = dup.k "
            "ORDER BY d.rid, d.a1",
            # Aggregates over the surviving rows.
            "SELECT count(*), sum(d.a1) FROM d, (SELECT unnest(rlist) "
            "AS rt FROM v WHERE vid = 1) AS tmp WHERE d.rid = tmp.rt",
        ],
    )
    def test_bail_outs_and_aggregates_match_reference(self, sql):
        compiled = self._db("compiled")
        interpreted = self._db("interpreted")
        assert compiled.query(sql) == interpreted.query(sql)

    def test_bail_out_keeps_the_reference_join(self):
        db = self._db("compiled")
        db.reset_stats()
        db.query(
            "SELECT d.rid, tmp.rt FROM d, (SELECT unnest(rlist) AS rt "
            "FROM v WHERE vid = 1) AS tmp WHERE d.rid = tmp.rt"
        )
        # The reference join materializes the probe side up front, so the
        # lazy columnar scan never runs.
        assert db.stats.blocks_scanned == 0
