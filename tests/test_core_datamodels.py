"""Cross-model tests: the five storage models must agree on content.

Parametrized over every registered data model, these check the logical
equivalence that Section 3's comparison presumes, plus each model's
distinguishing physical behaviour (array appends, single-row commits,
delta chains, per-version tables).
"""

import pytest

from repro.core.datamodels import MODEL_REGISTRY, resolve_model
from repro.storage.engine import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType

SCHEMA = TableSchema(
    [
        Column("name", DataType.TEXT),
        Column("score", DataType.INTEGER),
    ]
)

ALL_MODELS = sorted(MODEL_REGISTRY)


def build_history(model_name: str):
    """v1 = {1,2,3}; v2 = v1 - {2} + {4}; v3 = v2 + {5} (a chain)."""
    db = Database()
    model = MODEL_REGISTRY[model_name](db, "cvd", SCHEMA)
    model.create_storage()
    model.add_version(1, [1, 2, 3], {1: ("a", 10), 2: ("b", 20), 3: ("c", 30)}, ())
    model.add_version(2, [1, 3, 4], {4: ("d", 40)}, (1,))
    model.add_version(3, [1, 3, 4, 5], {5: ("e", 50)}, (2,))
    return db, model


EXPECTED = {
    1: {1: ("a", 10), 2: ("b", 20), 3: ("c", 30)},
    2: {1: ("a", 10), 3: ("c", 30), 4: ("d", 40)},
    3: {1: ("a", 10), 3: ("c", 30), 4: ("d", 40), 5: ("e", 50)},
}


class TestModelEquivalence:
    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_fetch_version_contents(self, model_name):
        _db, model = build_history(model_name)
        for vid, expected in EXPECTED.items():
            assert model.records_of(vid) == expected, (model_name, vid)

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_checkout_into_materializes_rid_plus_data(self, model_name):
        db, model = build_history(model_name)
        model.checkout_into(2, "work")
        rows = sorted(db.query("SELECT * FROM work"))
        assert rows == [(1, "a", 10), (3, "c", 30), (4, "d", 40)]

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_storage_bytes_positive_and_drops(self, model_name):
        db, model = build_history(model_name)
        assert model.storage_bytes() > 0
        model.drop_storage()
        # All backing tables gone: no cvd__* table remains.
        assert not [t for t in db.table_names() if t.startswith("cvd__")]

    @pytest.mark.parametrize(
        "model_name",
        [m for m in ALL_MODELS if MODEL_REGISTRY[m].supports_sql_rewriting],
    )
    def test_version_subquery_sql(self, model_name):
        db, model = build_history(model_name)
        sql = f"SELECT count(*) FROM {model.version_subquery_sql(3)} AS v"
        assert db.query(sql) == [(4,)]

    @pytest.mark.parametrize(
        "model_name",
        [m for m in ALL_MODELS if MODEL_REGISTRY[m].supports_sql_rewriting],
    )
    def test_all_versions_subquery_sql(self, model_name):
        db, model = build_history(model_name)
        sql = (
            f"SELECT vid, count(*) AS n "
            f"FROM {model.all_versions_subquery_sql()} AS av "
            f"GROUP BY vid ORDER BY vid"
        )
        assert db.query(sql) == [(1, 3), (2, 3), (3, 4)]


class TestCombinedTable:
    def test_vlist_inverted_index(self):
        db, model = build_history("combined")
        vlists = dict(db.query("SELECT rid, vlist FROM cvd__combined"))
        assert vlists[1] == (1, 2, 3)  # record 1 is in every version
        assert vlists[2] == (1,)
        assert vlists[5] == (3,)

    def test_commit_rewrites_arrays(self):
        db, model = build_history("combined")
        before = db.stats.array_cells_written
        model.add_version(4, [1, 3, 4, 5], {}, (3,))
        # Appending v4 rewrote the vlist of all four carried-over records.
        assert db.stats.array_cells_written - before >= 4


class TestSplitByRlist:
    def test_commit_is_single_versioning_row(self):
        db, model = build_history("split_by_rlist")
        versioning_rows = db.query("SELECT count(*) FROM cvd__versions")
        assert versioning_rows == [(3,)]
        before_cells = db.stats.array_cells_written
        model.add_version(4, [1, 3], {}, (3,))
        # No array rewrites at all: one fresh INSERT.
        assert db.stats.array_cells_written == before_cells

    def test_member_rids_helper(self):
        _db, model = build_history("split_by_rlist")
        assert model.member_rids(2) == (1, 3, 4)

    def test_data_table_deduplicates(self):
        db, _model = build_history("split_by_rlist")
        assert db.query("SELECT count(*) FROM cvd__data") == [(5,)]


class TestSplitByVlist:
    def test_separate_versioning_table(self):
        db, _model = build_history("split_by_vlist")
        assert db.query("SELECT count(*) FROM cvd__data") == [(5,)]
        vlists = dict(db.query("SELECT rid, vlist FROM cvd__vindex"))
        assert vlists[1] == (1, 2, 3)


class TestDelta:
    def test_precedent_chain(self):
        db, _model = build_history("delta")
        assert dict(db.query("SELECT vid, base FROM cvd__precedent")) == {
            1: None,
            2: 1,
            3: 2,
        }

    def test_tombstone_recorded(self):
        db, _model = build_history("delta")
        rows = db.query("SELECT rid FROM cvd__delta_2 WHERE tombstone = true")
        assert rows == [(2,)]

    def test_merge_picks_largest_common_base(self):
        db = Database()
        model = resolve_model("delta")(db, "cvd", SCHEMA)
        model.create_storage()
        model.add_version(1, [1, 2], {1: ("a", 1), 2: ("b", 2)}, ())
        model.add_version(2, [1, 2, 3], {3: ("c", 3)}, (1,))
        model.add_version(3, [1], {}, (1,))
        # Merge of v2 (3 common) and v3 (1 common): base must be v2.
        model.add_version(4, [1, 2, 3], {}, (2, 3))
        assert db.query("SELECT base FROM cvd__precedent WHERE vid = 4") == [(2,)]
        assert model.records_of(4) == {
            1: ("a", 1),
            2: ("b", 2),
            3: ("c", 3),
        }

    def test_no_sql_rewriting(self):
        assert not MODEL_REGISTRY["delta"].supports_sql_rewriting


class TestTablePerVersion:
    def test_one_table_per_version(self):
        db, _model = build_history("table_per_version")
        for vid, expected in EXPECTED.items():
            rows = db.query(f"SELECT count(*) FROM cvd__v{vid}")
            assert rows == [(len(expected),)]

    def test_storage_duplicates_records(self):
        db, _tpv = build_history("table_per_version")
        db2, _rlist = build_history("split_by_rlist")
        stored_tpv = sum(db.table(f"cvd__v{vid}").row_count for vid in (1, 2, 3))
        stored_rlist = db2.table("cvd__data").row_count
        # 10 stored payload rows (3+3+4) vs 5 deduplicated records.
        assert stored_tpv == 10
        assert stored_rlist == 5

    def test_missing_parent_record_raises(self):
        db = Database()
        model = resolve_model("table_per_version")(db, "cvd", SCHEMA)
        model.create_storage()
        model.add_version(1, [1], {1: ("a", 1)}, ())
        with pytest.raises(LookupError):
            model.add_version(2, [1, 99], {}, (1,))


class TestRegistry:
    def test_resolve_model(self):
        assert resolve_model("combined").model_name == "combined"

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            resolve_model("btree_forest")
