"""Unit tests for the engine's type system."""

import pytest

from repro.errors import TypeMismatchError
from repro.storage.types import (
    DataType,
    coerce,
    infer_type,
    parse_type_name,
    value_size_bytes,
    widen,
)


class TestParseTypeName:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("int", DataType.INTEGER),
            ("INTEGER", DataType.INTEGER),
            ("bigint", DataType.INTEGER),
            ("decimal", DataType.DECIMAL),
            ("double", DataType.DECIMAL),
            ("text", DataType.TEXT),
            ("VARCHAR", DataType.TEXT),
            ("bool", DataType.BOOLEAN),
            ("int[]", DataType.INT_ARRAY),
            ("integer[]", DataType.INT_ARRAY),
        ],
    )
    def test_aliases(self, name, expected):
        assert parse_type_name(name) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_type_name("geography")


class TestWiden:
    def test_same_type_is_identity(self):
        assert widen(DataType.INTEGER, DataType.INTEGER) is DataType.INTEGER

    def test_integer_decimal_widens_to_decimal(self):
        # The paper's Figure 5 example: cooccurrence int -> decimal.
        assert widen(DataType.INTEGER, DataType.DECIMAL) is DataType.DECIMAL
        assert widen(DataType.DECIMAL, DataType.INTEGER) is DataType.DECIMAL

    def test_anything_with_text_widens_to_text(self):
        assert widen(DataType.INTEGER, DataType.TEXT) is DataType.TEXT
        assert widen(DataType.BOOLEAN, DataType.TEXT) is DataType.TEXT

    def test_array_does_not_widen(self):
        with pytest.raises(TypeMismatchError):
            widen(DataType.INT_ARRAY, DataType.INTEGER)


class TestCoerce:
    def test_null_passes_any_type(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None

    def test_integer_from_string_and_float(self):
        assert coerce("42", DataType.INTEGER) == 42
        assert coerce(42.0, DataType.INTEGER) == 42

    def test_non_integral_float_rejected_as_integer(self):
        with pytest.raises(TypeMismatchError):
            coerce(1.5, DataType.INTEGER)

    def test_decimal_from_int(self):
        value = coerce(3, DataType.DECIMAL)
        assert value == 3.0 and isinstance(value, float)

    def test_boolean_spellings(self):
        assert coerce("t", DataType.BOOLEAN) is True
        assert coerce("FALSE", DataType.BOOLEAN) is False
        assert coerce(1, DataType.BOOLEAN) is True

    def test_bad_boolean_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce("maybe", DataType.BOOLEAN)

    def test_array_from_list_and_string(self):
        assert coerce([1, 2], DataType.INT_ARRAY) == (1, 2)
        assert coerce("{3,4}", DataType.INT_ARRAY) == (3, 4)
        assert coerce("{}", DataType.INT_ARRAY) == ()

    def test_text_from_number(self):
        assert coerce(7, DataType.TEXT) == "7"


class TestInferType:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, DataType.BOOLEAN),
            (3, DataType.INTEGER),
            (3.5, DataType.DECIMAL),
            ("x", DataType.TEXT),
            ((1, 2), DataType.INT_ARRAY),
        ],
    )
    def test_inference(self, value, expected):
        assert infer_type(value) is expected

    def test_uninferrable(self):
        with pytest.raises(TypeMismatchError):
            infer_type(object())


class TestValueSize:
    def test_paper_record_width(self):
        # Benchmark records are 4-byte integers.
        assert value_size_bytes(7, DataType.INTEGER) == 4

    def test_array_grows_linearly(self):
        small = value_size_bytes((1,), DataType.INT_ARRAY)
        large = value_size_bytes(tuple(range(100)), DataType.INT_ARRAY)
        assert large - small == 99 * 4

    def test_null_is_cheap(self):
        assert value_size_bytes(None, DataType.TEXT) == 1
