"""Unit tests for the VERSION ... OF CVD query translator."""

import pytest

from repro.errors import SQLSyntaxError


class TestVersionConstruct:
    def test_single_version_translation(self, protein_cvd, orpheus):
        sql = orpheus.translator.translate("SELECT * FROM VERSION 1 OF CVD proteins")
        assert "proteins__versions" in sql
        assert "VERSION" not in sql

    def test_alias_preserved(self, protein_cvd, orpheus):
        sql = orpheus.translator.translate(
            "SELECT a.protein1 FROM VERSION 1 OF CVD proteins AS a"
        )
        assert sql.rstrip().endswith("AS a") or " AS a" in sql

    def test_alias_generated_when_missing(self, protein_cvd, orpheus):
        sql = orpheus.translator.translate(
            "SELECT count(*) FROM VERSION 1 OF CVD proteins"
        )
        assert "__cvd_rel_" in sql

    def test_multiple_vids_union_all(self, protein_cvd, orpheus):
        result = orpheus.run("SELECT count(*) FROM VERSION 2, 3 OF CVD proteins")
        assert result.rows == [(6,)]  # 4 + 2 membership rows

    def test_two_constructs_in_one_query(self, protein_cvd, orpheus):
        result = orpheus.run(
            "SELECT count(*) FROM VERSION 1 OF CVD proteins AS a, "
            "VERSION 1 OF CVD proteins AS b "
            "WHERE a.protein1 = b.protein1 AND a.protein2 = b.protein2"
        )
        assert result.rows == [(3,)]

    def test_ordinary_sql_untouched(self, orpheus):
        text = "SELECT version FROM releases WHERE version > 3"
        # 'version' as a plain column name must not trigger translation.
        assert orpheus.translator.translate(text) == text

    def test_missing_cvd_keyword_raises(self, protein_cvd, orpheus):
        with pytest.raises(SQLSyntaxError):
            orpheus.translator.translate("SELECT * FROM VERSION 1 OF proteins")


class TestAllVersionsConstruct:
    def test_translation_shape(self, protein_cvd, orpheus):
        sql = orpheus.translator.translate(
            "SELECT vid FROM ALL VERSIONS OF CVD proteins AS av"
        )
        assert "unnest" in sql

    def test_group_by_version(self, protein_cvd, orpheus):
        result = orpheus.run(
            "SELECT vid, max(coexpression) FROM ALL VERSIONS OF CVD proteins "
            "AS av GROUP BY vid ORDER BY vid"
        )
        assert [row[0] for row in result.rows] == [1, 2, 3, 4]

    def test_paper_example_query(self, protein_cvd, orpheus):
        """Versions where count of tuples with protein1 = X exceeds 1."""
        result = orpheus.run(
            "SELECT vid FROM ALL VERSIONS OF CVD proteins AS av "
            "WHERE protein1 = 'ENSP273047' "
            "GROUP BY vid HAVING count(*) >= 2 ORDER BY vid"
        )
        # Every version keeps two ENSP273047 interactions (v3 = {r1 r2}).
        assert result.rows == [(1,), (2,), (3,), (4,)]


class TestDeltaFallback:
    def test_delta_model_materializes(self, orpheus):
        orpheus.init("d", [("x", "int")], rows=[(1,), (2,)], model="delta")
        result = orpheus.run("SELECT count(*) FROM VERSION 1 OF CVD d")
        assert result.rows == [(2,)]
