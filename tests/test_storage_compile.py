"""Property suite: compiled expressions/pipelines ≡ the interpreter.

The compiled tier (:mod:`repro.storage.compile` plus the executor's batch
pipeline) promises *zero behaviour change*: for every expression the
compiler accepts, the generated function must produce the interpreter's
exact value — including SQL three-valued logic — or raise the
interpreter's exact error; and whole SELECTs must return identical rows
under ``exec_mode="compiled"`` and ``exec_mode="interpreted"``.  These
properties are enforced here over hypothesis-generated expression trees,
rows with NULLs/mixed types, and generated queries covering filtering,
projection, joins, grouping, ORDER BY (top-k), DISTINCT, and LIMIT/OFFSET.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError, ReproError
from repro.storage.compile import compile_value
from repro.storage.engine import Database
from repro.storage.expression import (
    ArrayLiteral,
    Between,
    BinaryOp,
    ColumnRef,
    EvalEnv,
    Expression,
    FuncCall,
    InList,
    InSet,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)

COLUMNS = ["a", "b", "c", "s", "arr"]
ENV = EvalEnv(COLUMNS)

# ------------------------------------------------------------- strategies

_ints = st.integers(min_value=-50, max_value=50)
_scalars = st.one_of(
    st.none(),
    _ints,
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet="ab%_c", max_size=4),
    st.tuples(_ints, _ints),
)

_rows = st.tuples(_scalars, _scalars, _scalars, _scalars, _scalars)

_literals = st.builds(Literal, _scalars)
_columns = st.builds(ColumnRef, st.sampled_from(COLUMNS))
_leaves = st.one_of(_literals, _columns)

_binary_ops = st.sampled_from(
    ["+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=",
     "and", "or", "||", "<@", "@>", "&&"]
)
_func_names = st.sampled_from(
    ["abs", "lower", "upper", "length", "coalesce", "cardinality", "nosuch"]
)


def _nodes(children: st.SearchStrategy[Expression]) -> st.SearchStrategy:
    return st.one_of(
        st.builds(BinaryOp, _binary_ops, children, children),
        st.builds(UnaryOp, st.sampled_from(["not", "-"]), children),
        st.builds(IsNull, children, st.booleans()),
        st.builds(Between, children, children, children, st.booleans()),
        st.builds(
            InList,
            children,
            st.lists(children, max_size=3).map(tuple),
            st.booleans(),
        ),
        st.builds(
            InSet,
            children,
            st.frozensets(st.one_of(_ints, st.text(max_size=2)), max_size=4),
            st.booleans(),
        ),
        st.builds(Like, children, children, st.booleans()),
        st.builds(
            FuncCall, _func_names, st.lists(children, max_size=2).map(tuple)
        ),
        st.builds(ArrayLiteral, st.lists(children, max_size=3).map(tuple)),
    )


_expressions = st.recursive(_leaves, _nodes, max_leaves=12)


def outcome(fn):
    """(kind, payload) of calling ``fn``: its value or its exact error."""
    try:
        return ("value", fn())
    except ExecutionError as exc:
        return ("ExecutionError", str(exc))
    except Exception as exc:  # TypeError, ZeroDivisionError, ...
        return (type(exc).__name__, None)


# ------------------------------------------------- expression equivalence


class TestExpressionEquivalence:
    @given(expr=_expressions, row=_rows)
    @settings(max_examples=400)
    def test_compiled_matches_interpreted(self, expr, row):
        compiled = compile_value(expr, ENV)
        if compiled is None:  # outside the compiled subset: interpreter runs
            return
        interpreted = outcome(lambda: expr.evaluate(row, ENV))
        fused = outcome(lambda: compiled(row))
        assert fused == interpreted

    @given(expr=_expressions, rows=st.lists(_rows, max_size=5))
    @settings(max_examples=200)
    def test_filter_semantics_match(self, expr, rows):
        """`pred(row) is True` keeps exactly the interpreter's keepers."""
        compiled = compile_value(expr, ENV)
        if compiled is None:
            return
        interpreted = outcome(
            lambda: [r for r in rows if expr.evaluate(r, ENV) is True]
        )
        fused = outcome(lambda: [r for r in rows if compiled(r) is True])
        assert fused == interpreted

    def test_unknown_column_is_not_compiled(self):
        # The interpreter raises per evaluated row; compiling would turn
        # that into a statement-time error, so the compiler must refuse.
        assert compile_value(ColumnRef("nope"), ENV) is None

    def test_aggregate_outside_group_by_is_not_compiled(self):
        assert compile_value(FuncCall("sum", (ColumnRef("a"),)), ENV) is None

    def test_division_by_zero_stays_a_runtime_error(self):
        expr = BinaryOp("/", ColumnRef("a"), Literal(0))
        compiled = compile_value(expr, ENV)
        with pytest.raises(ExecutionError, match="division by zero"):
            compiled((1, 0, 0, 0, 0))

    def test_constant_folding_keeps_raising_constants_lazy(self):
        expr = BinaryOp("/", Literal(1), Literal(0))
        compiled = compile_value(expr, ENV)  # must not raise at compile time
        with pytest.raises(ExecutionError, match="division by zero"):
            compiled(())


# ---------------------------------------------------- whole-SELECT parity


def _build_db(mode: str) -> Database:
    db = Database(exec_mode=mode)
    db.execute(
        "CREATE TABLE t (a int, b int, c int, s text, arr int[])"
    )
    rows = [
        (1, 10, 1, "ab", (1, 2, 3)),
        (2, None, 1, "b%", (2,)),
        (3, 7, 2, None, ()),
        (4, 7, 2, "abc", (3, 4)),
        (None, 3, 3, "a_c", None),
        (6, -5, 3, "", (1, 5, 9)),
        (7, 0, None, "ab", (2, 4, 6)),
    ]
    for row in rows:
        db.execute("INSERT INTO t VALUES (%s, %s, %s, %s, %s)", row)
    db.execute("CREATE TABLE u (k int, v text)")
    for row in [(1, "x"), (2, "y"), (2, "z"), (4, None)]:
        db.execute("INSERT INTO u VALUES (%s, %s)", row)
    return db


QUERIES = [
    "SELECT * FROM t",
    "SELECT a, b + c FROM t WHERE a > 1 AND b <= 10",
    "SELECT a FROM t WHERE b IS NOT NULL ORDER BY b DESC, a LIMIT 3",
    "SELECT a FROM t WHERE a BETWEEN 2 AND 6 ORDER BY a DESC LIMIT 2 OFFSET 1",
    "SELECT c, count(*), sum(a), avg(b) FROM t GROUP BY c ORDER BY c",
    "SELECT c, count(*) FROM t GROUP BY c HAVING count(*) > 1",
    "SELECT DISTINCT c FROM t ORDER BY c",
    "SELECT a FROM t WHERE s LIKE 'ab%'",
    "SELECT a FROM t WHERE arr @> ARRAY[2]",
    "SELECT a FROM t WHERE arr && ARRAY[4, 9]",
    "SELECT a FROM t WHERE a IN (1, 3, 7)",
    "SELECT a FROM t WHERE a IN (SELECT k FROM u)",
    "SELECT t.a, u.v FROM t, u WHERE t.a = u.k ORDER BY t.a, u.v",
    "SELECT t.a, u.v FROM t LEFT JOIN u ON t.a = u.k ORDER BY t.a, u.v",
    "SELECT count(*) FROM t WHERE coalesce(b, 0) >= 0 OR NOT (c = 1)",
    "SELECT a FROM t WHERE a = (SELECT min(k) FROM u)",
    "SELECT unnest(arr) FROM t WHERE a = 1",
    "SELECT upper(s), length(s) FROM t WHERE s <> ''",
    "SELECT a FROM t LIMIT 2",
    "SELECT a, b FROM t WHERE b < 100 LIMIT 4",
]


class TestSelectParity:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_fixed_queries_agree(self, sql):
        compiled = _build_db("compiled")
        interpreted = _build_db("interpreted")
        assert compiled.query(sql) == interpreted.query(sql)

    @given(
        where_expr=_expressions,
        order_col=st.sampled_from(["a", "b", "c"]),
        descending=st.booleans(),
        limit=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
        offset=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
        distinct=st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_generated_pipelines_agree(
        self, where_expr, order_col, descending, limit, offset, distinct
    ):
        """Batch pipeline ≡ row pipeline for whole generated SELECTs."""
        from repro.storage.parser import ast_nodes as ast

        def run(mode: str):
            db = _build_db(mode)
            select = ast.Select(
                items=[
                    ast.SelectItem(ColumnRef("a"), None),
                    ast.SelectItem(ColumnRef("c"), None),
                ],
                from_items=[ast.TableRef("t")],
                where=where_expr,
                order_by=[ast.OrderItem(ColumnRef(order_col), descending)],
                limit=limit,
                offset=offset,
                distinct=distinct,
            )
            return db.execute_statements([select]).rows

        assert outcome(lambda: run("compiled")) == outcome(
            lambda: run("interpreted")
        )

    @given(
        limit=st.integers(min_value=0, max_value=10),
        offset=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40)
    def test_limit_pushdown_equals_slice(self, limit, offset):
        compiled = _build_db("compiled")
        everything = compiled.query("SELECT a, b FROM t WHERE c <> 99")
        limited = compiled.query(
            f"SELECT a, b FROM t WHERE c <> 99 LIMIT {limit} OFFSET {offset}"
        )
        assert limited == everything[offset : offset + limit]

    def test_topk_matches_full_sort_with_ties(self):
        compiled = _build_db("compiled")
        interpreted = _build_db("interpreted")
        # b=7 twice: the heap top-k must keep the stable tie order the
        # reference's multi-pass sort produces.
        sql = "SELECT a, b FROM t ORDER BY b DESC LIMIT 4"
        assert compiled.query(sql) == interpreted.query(sql)

    def test_update_delete_parity(self):
        results = {}
        for mode in ("compiled", "interpreted"):
            db = _build_db(mode)
            db.execute("UPDATE t SET b = b + 1 WHERE a >= 3 AND c = 2")
            db.execute("DELETE FROM t WHERE b IS NULL OR a = 1")
            results[mode] = db.query("SELECT * FROM t ORDER BY c, a")
        assert results["compiled"] == results["interpreted"]


# -------------------------------------------------- three-tier equivalence


WINDOW_QUERIES = [
    "SELECT a, row_number() OVER (PARTITION BY c ORDER BY b DESC, a) FROM t",
    "SELECT c, rank() OVER (ORDER BY b) AS r FROM t WHERE a IS NOT NULL "
    "ORDER BY c, r",
    "SELECT s, dense_rank() OVER (PARTITION BY c ORDER BY s DESC) FROM t "
    "ORDER BY c, s",
    "SELECT w.a, w.rn FROM (SELECT a, c, row_number() OVER "
    "(PARTITION BY c ORDER BY b DESC, a) AS rn FROM t) AS w "
    "WHERE w.rn <= 2 ORDER BY w.a",
]


def _force_row_tier(monkeypatch) -> None:
    """Disable the columnar kernel compilers so compiled mode runs on the
    fused row-kernel tier — the middle of the three execution tiers."""
    from repro.storage import executor as executor_module

    monkeypatch.setattr(
        executor_module, "compile_column_predicate", lambda expr, env: None
    )
    monkeypatch.setattr(
        executor_module, "compile_column_values", lambda expr, env: None
    )


class TestThreeTierParity:
    """columnar-compiled ≡ row-compiled ≡ interpreted, per statement."""

    @pytest.mark.parametrize("sql", QUERIES + WINDOW_QUERIES)
    def test_three_tiers_agree(self, sql, monkeypatch):
        columnar = outcome(lambda: _build_db("compiled").query(sql))
        interpreted = outcome(lambda: _build_db("interpreted").query(sql))
        _force_row_tier(monkeypatch)
        row_tier = outcome(lambda: _build_db("compiled").query(sql))
        assert columnar == interpreted
        assert row_tier == interpreted

    def test_forced_row_tier_really_is_the_row_tier(self, monkeypatch):
        _force_row_tier(monkeypatch)
        db = _build_db("compiled")
        db.reset_stats()
        db.query("SELECT a FROM t WHERE b > 0")
        assert db.stats.exprs_columnar == 0
        assert db.stats.exprs_compiled > 0

    @given(
        func=st.sampled_from(["row_number", "rank", "dense_rank"]),
        partition=st.booleans(),
        order_cols=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c", "s"]), st.booleans()),
            max_size=2,
        ),
        bound=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    )
    @settings(max_examples=60, deadline=None)
    def test_generated_window_queries_agree(
        self, func, partition, order_cols, bound
    ):
        """Windows over NULLs, ties, and DESC keys agree across all three
        tiers, with and without the grouped top-k outer filter."""
        over = []
        if partition:
            over.append("PARTITION BY c")
        if order_cols:
            over.append(
                "ORDER BY "
                + ", ".join(
                    f"{col} DESC" if descending else col
                    for col, descending in order_cols
                )
            )
        inner = f"SELECT a, b, {func}() OVER ({' '.join(over)}) AS rn FROM t"
        if bound is None:
            sql = inner
        else:
            sql = (
                f"SELECT w.a, w.rn FROM ({inner}) AS w "
                f"WHERE w.rn <= {bound} ORDER BY w.a, w.rn"
            )
        columnar = outcome(lambda: _build_db("compiled").query(sql))
        interpreted = outcome(lambda: _build_db("interpreted").query(sql))
        assert columnar == interpreted
        with pytest.MonkeyPatch.context() as mp:
            _force_row_tier(mp)
            row_tier = outcome(lambda: _build_db("compiled").query(sql))
        assert row_tier == interpreted


# ----------------------------------------------------- engine-mode basics


class TestExecModeKnob:
    def test_bad_mode_rejected(self):
        with pytest.raises(ReproError):
            Database(exec_mode="jit")

    def test_compiled_mode_charges_compile_counters(self):
        db = _build_db("compiled")
        db.reset_stats()
        db.query("SELECT a FROM t WHERE b > 0")
        # A plain column/comparison statement runs on the columnar tier;
        # either way the compiled engine must charge kernel counters.
        assert db.stats.exprs_columnar > 0
        assert db.stats.exprs_compiled == 0
        assert db.stats.batches_scanned > 0
        assert db.stats.blocks_scanned > 0

    def test_compiled_row_fallback_charges_exprs_compiled(self):
        db = _build_db("compiled")
        db.reset_stats()
        # abs() is not in the columnar subset -> fused row kernels.
        db.query("SELECT abs(a) FROM t WHERE b > 0")
        assert db.stats.exprs_compiled > 0
        assert db.stats.exprs_columnar == 0

    def test_interpreted_mode_never_compiles(self):
        db = _build_db("interpreted")
        db.reset_stats()
        db.query("SELECT a FROM t WHERE b > 0")
        assert db.stats.exprs_compiled == 0
        assert db.stats.exprs_interpreted == 0
        assert db.stats.exprs_columnar == 0
        assert db.stats.blocks_scanned == 0


class TestReviewRegressions:
    """Edge cases from review: pushdowns must not fire on out-of-contract
    bounds, and plan building must not hoist per-row errors."""

    @pytest.mark.parametrize(
        "sql, params",
        [
            ("SELECT a FROM t LIMIT %s", (-1,)),
            ("SELECT a FROM t ORDER BY a LIMIT %s", (-1,)),
            ("SELECT a FROM t LIMIT %s OFFSET %s", (10, -5)),
            ("SELECT a FROM t ORDER BY a LIMIT %s OFFSET %s", (2, -3)),
        ],
    )
    def test_negative_limit_offset_keeps_slice_semantics(self, sql, params):
        compiled = _build_db("compiled")
        interpreted = _build_db("interpreted")
        assert compiled.query(sql, params) == interpreted.query(sql, params)

    def test_zero_arg_unnest_is_a_per_row_error(self):
        for mode in ("compiled", "interpreted"):
            db = Database(exec_mode=mode)
            db.execute("CREATE TABLE e (a int)")
            # No rows evaluated -> no error (the reference behaviour).
            assert db.query("SELECT unnest() FROM e") == []
            db.execute("INSERT INTO e VALUES (1)")
            with pytest.raises(IndexError):
                db.query("SELECT unnest() FROM e")
