"""Tests for the weighted (C.2) and schema-aware (C.3) LyreSplit variants."""

import pytest

from repro.errors import PartitionError
from repro.partition.bipartite import BipartiteGraph
from repro.partition.dag_reduction import reduce_to_tree, tree_from_mappings
from repro.partition.lyresplit import lyresplit
from repro.partition.schema_aware import (
    cell_scaled_tree,
    schema_aware_lyresplit,
    uniform_attr_counts,
)
from repro.partition.weighted import _build_replica_tree, weighted_lyresplit


def small_tree():
    """Chain 1 -> 2 -> 3, light edge between 2 and 3."""
    return tree_from_mappings(
        {1: None, 2: 1, 3: 2},
        {1: 100, 2: 100, 3: 100},
        {(1, 2): 95, (2, 3): 5},
    )


class TestWeighted:
    def test_replica_tree_shape(self):
        tree = small_tree()
        replica, owner = _build_replica_tree(tree, {1: 2, 2: 1, 3: 3})
        assert replica.num_versions == 6
        assert sorted(owner.values()) == [1, 1, 2, 3, 3, 3]
        # Chain edges between replicas of the same version carry |R(v)|.
        chain_edges = [
            w
            for (p, c), w in replica.weight.items()
            if owner[p] == owner[c]
        ]
        assert chain_edges == [100, 100, 100]

    def test_uniform_frequencies_match_plain(self, sci_cvd):
        bip = BipartiteGraph.from_cvd(sci_cvd)
        tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
        plain = lyresplit(tree, 0.5).partitioning
        weighted = weighted_lyresplit(
            tree, {vid: 1 for vid in sci_cvd.membership}, 0.5, bip
        )
        assert bip.checkout_cost(weighted) <= bip.checkout_cost(plain) * 1.2

    def test_all_versions_covered(self, sci_cvd):
        bip = BipartiteGraph.from_cvd(sci_cvd)
        tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
        freqs = {vid: (vid % 3) + 1 for vid in sci_cvd.membership}
        partitioning = weighted_lyresplit(tree, freqs, 0.5, bip)
        assert partitioning.version_ids() == set(sci_cvd.membership)

    def test_hot_version_weighted_cost_improves(self, sci_cvd):
        """Skewing frequency toward cheap-to-isolate versions should not
        hurt the weighted objective versus the unweighted split."""
        bip = BipartiteGraph.from_cvd(sci_cvd)
        tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
        hot = max(sci_cvd.membership)  # newest version is hot
        freqs = {vid: 1 for vid in sci_cvd.membership}
        freqs[hot] = 50
        weighted = weighted_lyresplit(tree, freqs, 0.5, bip)
        plain = lyresplit(tree, 0.5).partitioning
        assert bip.weighted_checkout_cost(
            weighted, freqs
        ) <= bip.weighted_checkout_cost(plain, freqs) * 1.25

    def test_invalid_frequency_rejected(self):
        with pytest.raises(PartitionError):
            weighted_lyresplit(small_tree(), {1: 0}, 0.5)


class TestSchemaAware:
    def test_static_schema_reduces_to_plain(self, sci_cvd):
        """With uniform attribute counts the cell-scaled run picks the same
        partitions as plain LyreSplit (the appendix's reduction)."""
        bip = BipartiteGraph.from_cvd(sci_cvd)
        tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
        attr_counts, common = uniform_attr_counts(tree, 100)
        scaled = schema_aware_lyresplit(tree, attr_counts, common, 0.5)
        plain = lyresplit(tree, 0.5)
        assert set(scaled.partitioning.groups) == set(plain.partitioning.groups)

    def test_cell_scaling(self):
        tree = small_tree()
        attr_counts = {1: 4, 2: 5, 3: 5}
        common = {(1, 2): 4, (2, 3): 5}
        scaled = cell_scaled_tree(tree, attr_counts, common)
        assert scaled.num_records[1] == 400
        assert scaled.weight[(1, 2)] == 95 * 4

    def test_schema_difference_encourages_split(self):
        """An edge across which few attributes are shared becomes a cheaper
        cut even when record overlap is high."""
        tree = tree_from_mappings(
            {1: None, 2: 1},
            {1: 100, 2: 100},
            {(1, 2): 90},  # heavy record overlap
        )
        # Versions share only 1 of 10 attributes across the edge.
        split = schema_aware_lyresplit(
            tree, {1: 10, 2: 10}, {(1, 2): 1}, delta=0.2
        )
        plain = lyresplit(tree, 0.2)
        assert split.num_partitions >= plain.num_partitions

    def test_missing_counts_rejected(self):
        tree = small_tree()
        with pytest.raises(PartitionError):
            cell_scaled_tree(tree, {1: 1}, {})


class TestWeightedSearchAndIntegration:
    def test_search_delta_weighted_respects_budget(self, sci_cvd):
        from repro.partition.weighted import search_delta_weighted

        bip = BipartiteGraph.from_cvd(sci_cvd)
        tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
        freqs = {vid: (vid % 4) + 1 for vid in sci_cvd.membership}
        gamma = 2.0 * bip.num_records
        _delta, partitioning, storage, cost = search_delta_weighted(
            tree, freqs, gamma, bip
        )
        assert storage <= gamma
        assert cost == bip.weighted_checkout_cost(partitioning, freqs)

    def test_orpheus_tracks_checkout_frequencies(self, orpheus):
        orpheus.init("f", [("x", "int")], rows=[(1,), (2,)])
        orpheus.checkout("f", 1, table_name="w1")
        orpheus.commit("w1")
        orpheus.checkout("f", 1, table_name="w2")
        orpheus.commit("w2")
        orpheus.checkout("f", 2, table_name="w3")
        orpheus.commit("w3")
        counts = orpheus.checkout_frequencies("f")
        assert counts == {1: 2, 2: 1}

    def test_weighted_optimize_end_to_end(self, orpheus):
        orpheus.init("f", [("x", "int")], rows=[(i,) for i in range(30)])
        tip = 1
        for step in range(6):
            orpheus.checkout("f", tip, table_name="w")
            orpheus.db.execute("DELETE FROM w WHERE x = %s", (step,))
            orpheus.db.execute("INSERT INTO w VALUES (NULL, %s)", (100 + step,))
            tip = orpheus.commit("w")
        # Make the latest version hot, then optimize weighted.
        for i in range(5):
            orpheus.checkout("f", tip, table_name=f"hot{i}")
            orpheus.commit(f"hot{i}")
        optimizer = orpheus.optimize("f", weighted=True)
        assert optimizer.frequencies is not None
        cvd = orpheus.cvd("f")
        for vid in cvd.graph.version_ids():
            rows = cvd.model.fetch_version(vid)
            assert {r[0] for r in rows} == set(cvd.member_rids(vid))
