"""Crash-faithful optimizer state: the live placement policy survives.

PR-1/PR-2 restored a partitioned CVD's *structure* but forgot the
optimizer that drives it: commits after a restore fell back to
closest-parent placement and online maintenance stayed dead until a
manual ``optimize``.  These tests pin the new contract:

* the optimizer's decision state (delta*, budget knobs, trace, pending
  migration plans) rides snapshots via the model's ``extra_state`` and
  its transitions ride the WAL as typed records, so a reopened store
  resumes exactly where it left off;
* a migration interrupted between its journaled start and finish is
  detected on open and rolled forward;
* format-1 (PR-1/PR-2 era) snapshots still open cleanly with the
  documented closest-parent fallback.
"""

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecoveryError
from repro.partition.bipartite import Partitioning
from repro.partition.migration import plan_intelligent
from repro.partition.online import PendingMigration
from repro.persist import Store
from repro.persist.snapshot import FORMAT_VERSION
from repro.persist.wal import WriteAheadLog

from test_persist_crash import crash
from test_persist_roundtrip import build_history

SCHEMA = [("k", "int"), ("v", "int")]


def materialize_sorted(orpheus, name="proteins"):
    cvd = orpheus.cvd(name)
    return {vid: sorted(cvd.checkout_rows([vid])) for vid in cvd.graph.version_ids()}


def optimizer_fingerprint(orpheus, name="proteins"):
    """Everything a faithful restore must reproduce about the optimizer."""
    optimizer = orpheus.optimizer_for(name)
    assert optimizer is not None
    return {
        "delta_star": optimizer.delta_star,
        "storage_multiple": optimizer.storage_multiple,
        "tolerance": optimizer.tolerance,
        "samples": list(optimizer.trace.samples),
        "migrations": list(optimizer.trace.migrations),
        "pending": optimizer.pending_migration,
        "assignment": dict(orpheus.cvd(name).model._assignment),
    }


def commit_step(orpheus, step, cvd_name="proteins"):
    latest = max(orpheus.cvd(cvd_name).graph.version_ids())
    table = f"step_{step}"
    orpheus.checkout(cvd_name, latest, table_name=table)
    orpheus.run(f"UPDATE {table} SET neighborhood = {step}")
    return orpheus.commit(table, message=f"step {step}")


def force_pending_migration(orpheus, cvd_name="proteins"):
    """Journal a migration_start (crash-before-finish simulation).

    Builds the same plan :meth:`PartitionOptimizer.migrate` would and
    adopts it via ``begin_migration`` — which journals the start record —
    without running the physical work, exactly the state a process killed
    mid-migration leaves on disk.
    """
    optimizer = orpheus.optimizer_for(cvd_name)
    cvd = orpheus.cvd(cvd_name)
    model = cvd.model
    single = Partitioning.single(cvd.graph.version_ids())
    states = model.partition_states()
    plan = plan_intelligent(
        [set(state.rids) for state in states], single, model._members
    )
    pending = PendingMigration(
        groups=tuple(plan.new_groups),
        reuse=plan.resolve_reuse([state.index for state in states]),
        strategy="intelligent",
        modifications=plan.modifications,
        delta=optimizer.delta_star,
        at_version_count=cvd.version_count,
    )
    optimizer.begin_migration(pending)
    return pending


class TestOptimizerStateRoundTrip:
    def test_snapshot_restores_live_policy(self, tmp_path):
        store = Store.open(tmp_path / "store")
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        orpheus.optimize("proteins", tolerance=1.2)
        for step in range(3):
            commit_step(orpheus, step)
        expected = optimizer_fingerprint(orpheus)
        assert len(expected["samples"]) == 3  # maintenance ran per commit
        store.checkpoint()
        store.close()

        recovered = Store.open(tmp_path / "store")
        optimizer = recovered.orpheus.optimizer_for("proteins")
        model = recovered.orpheus.cvd("proteins").model
        # The placement policy is the restored optimizer's, not a fallback.
        assert model.placement_policy is not None
        assert model.placement_policy.__self__ is optimizer
        assert optimizer_fingerprint(recovered.orpheus) == expected
        recovered.close()

    def test_wal_replay_restores_maintenance_trace(self, tmp_path):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        orpheus.optimize("proteins")
        for step in range(2):
            commit_step(orpheus, step)
        expected = optimizer_fingerprint(orpheus)
        crash(store)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        # No snapshot was ever written: everything came from the WAL tail.
        assert not (recovered.path / "CURRENT").exists()
        assert optimizer_fingerprint(recovered.orpheus) == expected

    def test_migration_events_replay_deterministically(self, tmp_path):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        optimizer = orpheus.optimize("proteins", tolerance=1.05)
        # Degrade the layout so the next commit's tolerance check fires an
        # online migration (journaled as migration_start/finish).
        single = Partitioning.single(
            orpheus.cvd("proteins").graph.version_ids()
        )
        optimizer.migrate(single)
        commit_step(orpheus, 0)
        assert len(optimizer.trace.migrations) >= 2
        expected = optimizer_fingerprint(orpheus)
        expected_rows = materialize_sorted(orpheus)
        crash(store)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert optimizer_fingerprint(recovered.orpheus) == expected
        assert materialize_sorted(recovered.orpheus) == expected_rows

    def test_commit_on_optimized_cvd_is_one_wal_append(self, tmp_path):
        """The maintenance sample piggybacks on the commit record: a commit
        must stay a single fsync'd append, not gain a second one."""
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        orpheus.optimize("proteins")
        lsn_before = store.last_lsn
        commit_step(orpheus, 0)
        assert store.last_lsn == lsn_before + 1
        optimizer = orpheus.optimizer_for("proteins")
        assert len(optimizer.trace.samples) == 1
        crash(store)

    def test_reoptimize_trace_survives_wal_replay(self, tmp_path):
        """A re-run `optimize` migrates in place; its trace event (timing
        included) must restore exactly from the journaled record."""
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        orpheus.optimize("proteins")
        commit_step(orpheus, 0)
        orpheus.optimize("proteins", storage_threshold=1.5)  # re-tune
        expected = optimizer_fingerprint(orpheus)
        assert len(expected["migrations"]) >= 1
        assert expected["storage_multiple"] == 1.5
        crash(store)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert optimizer_fingerprint(recovered.orpheus) == expected

    def test_restored_store_keeps_placing_like_the_live_one(self, tmp_path):
        live = Store.open(tmp_path / "live", checkpoint_interval=0)
        build_history(live.orpheus, "split_by_rlist")
        live.orpheus.optimize("proteins")

        restored = Store.open(tmp_path / "restored", checkpoint_interval=0)
        build_history(restored.orpheus, "split_by_rlist")
        restored.orpheus.optimize("proteins")

        for step in range(3):
            commit_step(live.orpheus, step)
            crash(restored)
            restored = Store.open(tmp_path / "restored", checkpoint_interval=0)
            commit_step(restored.orpheus, step)
        assert optimizer_fingerprint(
            restored.orpheus
        ) == optimizer_fingerprint(live.orpheus)
        crash(live)
        crash(restored)


class TestInterruptedMigration:
    def test_start_without_finish_rolls_forward_on_open(self, tmp_path):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        orpheus.optimize("proteins")
        expected_rows = materialize_sorted(orpheus)
        pending = force_pending_migration(orpheus)
        crash(store)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert any(
            "rolled forward" in warning
            for warning in recovered.recovery_warnings
        )
        optimizer = recovered.orpheus.optimizer_for("proteins")
        assert optimizer.pending_migration is None
        model = recovered.orpheus.cvd("proteins").model
        assert len(model.partition_states()) == len(pending.groups)
        assert optimizer.trace.migrations[-1].strategy == "intelligent"
        assert materialize_sorted(recovered.orpheus) == expected_rows
        crash(recovered)

        # The roll-forward journaled its finish: the next open is clean.
        reopened = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert reopened.recovery_warnings == []
        assert materialize_sorted(reopened.orpheus) == expected_rows
        reopened.close()

    def test_pending_plan_survives_a_checkpoint(self, tmp_path):
        """An auto-checkpoint can fire while a migration is in flight (its
        start record tips the interval); the pending plan must ride the
        snapshot so a crash after the checkpoint still rolls forward."""
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        orpheus.optimize("proteins")
        expected_rows = materialize_sorted(orpheus)
        pending = force_pending_migration(orpheus)
        store.checkpoint()  # snapshot carries the pending plan; WAL empties
        crash(store)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert any(
            "rolled forward" in warning
            for warning in recovered.recovery_warnings
        )
        model = recovered.orpheus.cvd("proteins").model
        assert len(model.partition_states()) == len(pending.groups)
        assert materialize_sorted(recovered.orpheus) == expected_rows
        recovered.close()

    def test_commit_after_roll_forward_continues_history(self, tmp_path):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        orpheus.optimize("proteins")
        force_pending_migration(orpheus)
        crash(store)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        vid = commit_step(recovered.orpheus, 7)
        model = recovered.orpheus.cvd("proteins").model
        assert model.partition_of(vid) is not None
        assert recovered.orpheus.cvd("proteins").version_count == 5
        recovered.close()

    def test_optimizer_record_without_optimizer_is_divergence(self, tmp_path):
        """A maintain/migration record can only replay against a restored
        optimizer; anything else means the journal and the state diverged
        and recovery must refuse rather than guess."""
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        store.orpheus.init("t", SCHEMA, rows=[(1, 1)], primary_key=("k",))
        crash(store)
        wal = WriteAheadLog(tmp_path / "store" / "wal.log")
        wal.append(
            2, {"op": "maintain", "cvd": "t", "sample": [1, 1.0, 1.0],
                "clock": 9}
        )
        wal.close()

        with pytest.raises(RecoveryError, match="no optimizer"):
            Store.open(tmp_path / "store", checkpoint_interval=0)


class TestBackwardCompatibility:
    def _strip_to_format1(self, store_path: Path) -> None:
        """Rewrite the active snapshot as a PR-1/PR-2 era manifest: format
        1, no optimizer state under the partitioned model's extra_state."""
        current = json.loads(
            (store_path / "CURRENT").read_text(encoding="utf-8")
        )["snapshot"]
        manifest_path = store_path / "snapshots" / current / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert manifest["format"] == FORMAT_VERSION
        manifest["format"] = 1
        for cvd_state in manifest["orpheus"]["cvds"]:
            cvd_state["model_state"].pop("optimizer", None)
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

    def test_format1_store_opens_with_documented_fallback(self, tmp_path):
        store = Store.open(tmp_path / "store")
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        orpheus.optimize("proteins")
        expected_rows = materialize_sorted(orpheus)
        store.checkpoint()
        store.close()
        self._strip_to_format1(tmp_path / "store")

        recovered = Store.open(tmp_path / "store")
        ro = recovered.orpheus
        # Structure restored, policy not: the documented PR-1/PR-2 fallback.
        assert ro.cvd("proteins").model.model_name == "partitioned_rlist"
        assert ro.optimizer_for("proteins") is None
        assert ro.cvd("proteins").model.placement_policy is None
        assert materialize_sorted(ro) == expected_rows
        # Commits still work (closest-parent placement)...
        vid = commit_step(ro, 0)
        parent_partition = ro.cvd("proteins").model.partition_of(4)
        assert ro.cvd("proteins").model.partition_of(vid) == parent_partition
        # ...and a re-run optimize resumes online maintenance.
        ro.optimize("proteins")
        assert ro.optimizer_for("proteins") is not None
        recovered.close()

    def test_future_format_is_rejected(self, tmp_path):
        store = Store.open(tmp_path / "store")
        store.orpheus.init("t", SCHEMA, rows=[(1, 1)])
        store.checkpoint()
        store.close()
        current = json.loads(
            (tmp_path / "store" / "CURRENT").read_text(encoding="utf-8")
        )["snapshot"]
        manifest_path = (tmp_path / "store" / "snapshots" / current / "manifest.json")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["format"] = 99
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(RecoveryError, match="unsupported format"):
            Store.open(tmp_path / "store")


class TestRestorePlacementParity:
    """Property: crash+reopen around every commit changes nothing.

    For any commit sequence, (commit -> crash -> Store.open -> commit)
    must yield the identical partition placement, delta*, and trace as
    the uninterrupted run — the acceptance bar for crash-faithful
    optimizer state.
    """

    @staticmethod
    def _run_history(root: Path, steps, crash_between: bool):
        store = Store.open(root, checkpoint_interval=0)
        orpheus = store.orpheus
        orpheus.init(
            "t",
            SCHEMA,
            rows=[(i, i) for i in range(8)],
            primary_key=("k",),
        )
        orpheus.optimize("t", tolerance=1.1)
        next_key = 100
        for step, (parent_pick, deletes, inserts) in enumerate(steps):
            if crash_between:
                crash(store)
                store = Store.open(root, checkpoint_interval=0)
                orpheus = store.orpheus
            cvd = orpheus.cvd("t")
            vids = sorted(cvd.graph.version_ids())
            parent = vids[parent_pick % len(vids)]
            table = f"w{step}"
            orpheus.checkout("t", parent, table_name=table)
            keys = sorted(row[0] for row in orpheus.run(f"SELECT k FROM {table}").rows)
            for key in keys[:deletes]:
                orpheus.run(f"DELETE FROM {table} WHERE k = {key}")
            for _ in range(inserts):
                orpheus.run(
                    f"INSERT INTO {table} VALUES "
                    f"(NULL, {next_key}, {next_key})"
                )
                next_key += 1
            orpheus.commit(table, message=f"step {step}")
        optimizer = orpheus.optimizer_for("t")
        summary = {
            "assignment": dict(orpheus.cvd("t").model._assignment),
            "delta_star": optimizer.delta_star,
            "samples": list(optimizer.trace.samples),
            "migrations": [
                # wall_seconds is timing, everything else must match
                (m.at_version_count, m.plan_modifications,
                 m.records_inserted, m.records_deleted, m.strategy)
                for m in optimizer.trace.migrations
            ],
            "rows": {
                vid: sorted(orpheus.cvd("t").checkout_rows([vid]))
                for vid in orpheus.cvd("t").graph.version_ids()
            },
        }
        crash(store)
        return summary

    @settings(max_examples=20, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_crash_reopen_placement_parity(self, steps):
        with tempfile.TemporaryDirectory() as raw:
            root = Path(raw)
            uninterrupted = self._run_history(root / "a", steps, False)
            interrupted = self._run_history(root / "b", steps, True)
        assert interrupted == uninterrupted
