"""Window functions and grouped top-k: shapes, semantics, and pushdown.

The analytic layer promises three things, each pinned here:

* **Shape errors** — the parser rejects malformed window specs (OVER on a
  non-window function, arguments, nesting) and the executor rejects
  windows outside the SELECT list or mixed with grouping, identically in
  both execution modes.
* **Semantics** — ties, NULL ordering (last ascending, first descending),
  DESC keys, multi-key partitions, and the no-ORDER-BY all-peers rule all
  produce the reference values, and ``exec_mode="compiled"`` matches
  ``exec_mode="interpreted"`` bit for bit.
* **Grouped top-k pushdown** — the planner's ``row_number`` bound
  detection fires exactly on the documented idiom, never changes results
  (the outer filter still runs), and stays off for every shape it cannot
  prove safe.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError, SQLSyntaxError
from repro.storage import planner
from repro.storage.engine import Database
from repro.storage.expression import conjuncts
from repro.storage.parser import parse_statement


def _db(mode: str) -> Database:
    db = Database(exec_mode=mode)
    db.execute("CREATE TABLE s (g int, x int, y text)")
    rows = [
        (1, 10, "a"),
        (1, 10, "b"),
        (1, 7, None),
        (1, None, "c"),
        (2, 5, "d"),
        (2, 5, "e"),
        (2, 5, "f"),
        (2, 9, None),
        (None, 3, "g"),
        (None, 3, "h"),
        (3, None, None),
    ]
    for row in rows:
        db.execute("INSERT INTO s VALUES (%s, %s, %s)", row)
    return db


def _parity(sql: str) -> list:
    compiled = _db("compiled").query(sql)
    interpreted = _db("interpreted").query(sql)
    assert compiled == interpreted
    return compiled


# ------------------------------------------------------------ shape errors


class TestWindowShapes:
    def test_over_on_non_window_function_is_rejected(self):
        with pytest.raises(SQLSyntaxError, match="does not support OVER"):
            parse_statement("SELECT sum(x) OVER (ORDER BY x) FROM s")

    def test_window_function_takes_no_arguments(self):
        with pytest.raises(SQLSyntaxError, match="takes no arguments"):
            parse_statement("SELECT row_number(x) OVER (ORDER BY x) FROM s")

    def test_nested_windows_are_rejected(self):
        with pytest.raises(SQLSyntaxError, match="cannot be nested"):
            parse_statement(
                "SELECT row_number() OVER (ORDER BY rank() OVER (ORDER BY x))"
                " FROM s"
            )

    def test_bare_over_stays_an_identifier(self):
        # OVER is non-reserved: without "(" it parses as an alias.
        statement = parse_statement("SELECT x AS over FROM s")
        assert statement.items[0].alias == "over"

    @pytest.mark.parametrize("mode", ["compiled", "interpreted"])
    def test_window_in_where_is_rejected(self, mode):
        db = _db(mode)
        with pytest.raises(ExecutionError, match="only allowed in the SELECT"):
            db.query("SELECT x FROM s WHERE row_number() OVER (ORDER BY x) = 1")

    @pytest.mark.parametrize("mode", ["compiled", "interpreted"])
    def test_window_with_group_by_is_rejected(self, mode):
        db = _db(mode)
        with pytest.raises(ExecutionError, match="cannot be combined"):
            db.query(
                "SELECT g, row_number() OVER (ORDER BY g) FROM s GROUP BY g"
            )

    @pytest.mark.parametrize("mode", ["compiled", "interpreted"])
    def test_window_with_aggregate_is_rejected(self, mode):
        db = _db(mode)
        with pytest.raises(ExecutionError, match="cannot be combined"):
            db.query("SELECT count(*), row_number() OVER (ORDER BY x) FROM s")


# --------------------------------------------------------------- semantics


class TestWindowSemantics:
    def test_row_number_breaks_ties_in_scan_order(self):
        rows = _parity(
            "SELECT y, row_number() OVER (ORDER BY x) AS rn FROM s "
            "WHERE g = 2 ORDER BY rn"
        )
        # x=5 three times: stable sort keeps insertion order d, e, f.
        assert rows == [("d", 1), ("e", 2), ("f", 3), (None, 4)]

    def test_rank_and_dense_rank_tie_semantics(self):
        rows = _parity(
            "SELECT y, rank() OVER (ORDER BY x) AS r, "
            "dense_rank() OVER (ORDER BY x) AS dr "
            "FROM s WHERE g = 2 ORDER BY r, y"
        )
        # rank leaves gaps after ties; dense_rank does not.
        assert rows == [
            ("d", 1, 1),
            ("e", 1, 1),
            ("f", 1, 1),
            (None, 4, 2),
        ]

    def test_nulls_sort_last_ascending(self):
        rows = _parity(
            "SELECT x, row_number() OVER (PARTITION BY g ORDER BY x) AS rn "
            "FROM s WHERE g = 1 ORDER BY rn"
        )
        assert rows == [(7, 1), (10, 2), (10, 3), (None, 4)]

    def test_nulls_sort_first_descending(self):
        rows = _parity(
            "SELECT x, row_number() OVER (PARTITION BY g ORDER BY x DESC) "
            "AS rn FROM s WHERE g = 1 ORDER BY rn"
        )
        assert rows == [(None, 1), (10, 2), (10, 3), (7, 4)]

    def test_null_partition_key_forms_its_own_partition(self):
        rows = _parity(
            "SELECT g, y, row_number() OVER (PARTITION BY g ORDER BY y) "
            "AS rn FROM s WHERE x = 3 ORDER BY y"
        )
        assert rows == [(None, "g", 1), (None, "h", 2)]

    def test_multi_key_partitions_and_orders(self):
        rows = _parity(
            "SELECT g, x, y, row_number() OVER "
            "(PARTITION BY g, x ORDER BY y DESC, x) AS rn "
            "FROM s WHERE g = 1 AND x = 10 ORDER BY rn"
        )
        assert rows == [(1, 10, "b", 1), (1, 10, "a", 2)]

    def test_no_order_by_makes_every_row_a_peer(self):
        rows = _parity(
            "SELECT y, row_number() OVER (PARTITION BY g) AS rn, "
            "rank() OVER (PARTITION BY g) AS r, "
            "dense_rank() OVER (PARTITION BY g) AS dr "
            "FROM s WHERE g = 2 ORDER BY rn"
        )
        # row_number stays positional; rank/dense_rank are all 1.
        assert rows == [
            ("d", 1, 1, 1),
            ("e", 2, 1, 1),
            ("f", 3, 1, 1),
            (None, 4, 1, 1),
        ]

    def test_multiple_windows_in_one_select(self):
        _parity(
            "SELECT g, row_number() OVER (PARTITION BY g ORDER BY x) AS a, "
            "rank() OVER (ORDER BY x DESC) AS b FROM s ORDER BY g, a"
        )

    def test_window_value_usable_in_outer_query(self):
        rows = _parity(
            "SELECT t.g, t.x FROM (SELECT g, x, row_number() OVER "
            "(PARTITION BY g ORDER BY x DESC, y) AS rn FROM s) AS t "
            "WHERE t.rn = 1 AND t.g IS NOT NULL ORDER BY t.g"
        )
        assert rows == [(1, None), (2, 9), (3, None)]


# ------------------------------------------------------ grouped top-k push


def _topk_db(mode: str, groups: int = 8, per_group: int = 50) -> Database:
    db = Database(exec_mode=mode)
    db.execute("CREATE TABLE m (rid int, grp int, score int)")
    for rid in range(groups * per_group):
        db.execute(
            "INSERT INTO m VALUES (%s, %s, %s)",
            (rid, rid % groups, (rid * 37) % 97),
        )
    return db


TOPK_SQL = (
    "SELECT t.rid, t.grp, t.rn FROM (SELECT rid, grp, score, "
    "row_number() OVER (PARTITION BY grp ORDER BY score DESC, rid) AS rn "
    "FROM m) AS t WHERE t.rn <= 3 ORDER BY t.grp, t.rn"
)


class TestGroupedTopK:
    def test_pushdown_matches_interpreted_reference(self):
        compiled = _topk_db("compiled").query(TOPK_SQL)
        interpreted = _topk_db("interpreted").query(TOPK_SQL)
        assert compiled == interpreted
        assert len(compiled) == 8 * 3

    def test_pushdown_matches_full_ranking_filtered_by_hand(self):
        db = _topk_db("compiled")
        full = db.query(
            "SELECT t.rid, t.grp, t.rn FROM (SELECT rid, grp, score, "
            "row_number() OVER (PARTITION BY grp ORDER BY score DESC, rid)"
            " AS rn FROM m) AS t ORDER BY t.grp, t.rn"
        )
        assert db.query(TOPK_SQL) == [row for row in full if row[2] <= 3]

    def test_tighter_of_two_bounds_wins_and_filter_still_runs(self):
        sql = (
            "SELECT t.rid, t.rn FROM (SELECT rid, grp, "
            "row_number() OVER (PARTITION BY grp ORDER BY rid) AS rn "
            "FROM m) AS t WHERE t.rn <= 5 AND t.rn <= 2 AND t.rid >= 0 "
            "ORDER BY t.rid"
        )
        compiled = _topk_db("compiled").query(sql)
        assert compiled == _topk_db("interpreted").query(sql)
        assert all(rn <= 2 for _rid, rn in compiled)


class TestTopKHintDetection:
    """Unit tests of the planner's bound detection on parsed statements."""

    def _hint(self, sql: str, mode: str = "compiled") -> int | None:
        db = Database(exec_mode=mode)
        statement = parse_statement(sql)
        item = statement.from_items[0]
        return planner._subquery_topk_hint(db, item, conjuncts(statement.where))

    IDIOM = (
        "SELECT t.rid FROM (SELECT rid, row_number() OVER "
        "(PARTITION BY grp ORDER BY score) AS rn FROM m) AS t WHERE {0}"
    )

    def test_detects_le_bound(self):
        assert self._hint(self.IDIOM.format("t.rn <= 3")) == 3

    def test_detects_strict_lt_bound(self):
        assert self._hint(self.IDIOM.format("t.rn < 4")) == 3

    def test_detects_flipped_literal_first(self):
        assert self._hint(self.IDIOM.format("3 >= t.rn")) == 3

    def test_tighter_bound_wins(self):
        assert self._hint(self.IDIOM.format("t.rn <= 5 AND t.rn <= 2")) == 2

    def test_interpreted_mode_never_hints(self):
        assert self._hint(self.IDIOM.format("t.rn <= 3"), "interpreted") is None

    def test_lower_bound_is_not_a_hint(self):
        assert self._hint(self.IDIOM.format("t.rn >= 3")) is None

    def test_non_positive_bound_is_not_a_hint(self):
        assert self._hint(self.IDIOM.format("t.rn < 1")) is None

    def test_non_int_bound_is_not_a_hint(self):
        assert self._hint(self.IDIOM.format("t.rn <= TRUE")) is None

    def test_other_alias_is_not_a_hint(self):
        assert self._hint(self.IDIOM.format("u.rn <= 3")) is None

    def test_rank_keeps_full_ranking(self):
        sql = (
            "SELECT t.rid FROM (SELECT rid, rank() OVER "
            "(PARTITION BY grp ORDER BY score) AS rn FROM m) AS t "
            "WHERE t.rn <= 3"
        )
        assert self._hint(sql) is None

    def test_second_window_keeps_full_ranking(self):
        sql = (
            "SELECT t.rid FROM (SELECT rid, row_number() OVER "
            "(PARTITION BY grp ORDER BY score) AS rn, rank() OVER "
            "(ORDER BY rid) AS r2 FROM m) AS t WHERE t.rn <= 3"
        )
        assert self._hint(sql) is None

    @pytest.mark.parametrize(
        "suffix",
        [
            "ORDER BY rid",
            "LIMIT 5",
            "GROUP BY rid",
        ],
    )
    def test_inner_shapes_outside_the_idiom_keep_full_ranking(self, suffix):
        sql = (
            "SELECT t.rid FROM (SELECT rid, row_number() OVER "
            f"(PARTITION BY grp ORDER BY score) AS rn FROM m {suffix}) AS t "
            "WHERE t.rn <= 3"
        )
        assert self._hint(sql) is None
