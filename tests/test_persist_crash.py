"""Crash recovery: committed versions survive, uncommitted staging dies.

A "crash" abandons the Store without :meth:`close` — exactly the state a
killed process leaves behind, since every journal append fsyncs before the
operation is acknowledged.  With no checkpoint taken, recovery must come
from the write-ahead log alone.
"""

import pytest

from repro.core.datamodels import MODEL_REGISTRY
from repro.persist import Store

from invariants import assert_replay_determinism
from test_persist_roundtrip import build_history, materialize_all

ALL_MODELS = sorted(MODEL_REGISTRY)


def crash(store):
    """Simulate a kill: drop the handles without close/checkpoint.

    A killed process's fds are closed by the OS — which also releases the
    store's advisory lock — but nothing is flushed beyond what each append
    already fsync'd.
    """
    store.wal.close()
    store._release_lock()


@pytest.mark.parametrize("model", ALL_MODELS)
class TestCrashAfterWalAppend:
    def test_committed_versions_survive_byte_identical(self, tmp_path, model):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        build_history(store.orpheus, model)
        expected = materialize_all(store.orpheus)
        expected_log = store.orpheus.version_log("proteins")
        crash(store)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        # No checkpoint ever ran: recovery really replayed the WAL tail.
        assert not (recovered.path / "CURRENT").exists()
        assert materialize_all(recovered.orpheus) == expected
        assert recovered.orpheus.version_log("proteins") == expected_log

    def test_uncommitted_staging_does_not_survive(self, tmp_path, model):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        build_history(orpheus, model)
        orpheus.checkout("proteins", 4, table_name="in_flight")
        orpheus.run("UPDATE in_flight SET neighborhood = -1")
        assert orpheus.provenance.staged_names() == ["in_flight"]
        crash(store)

        orpheus = Store.open(tmp_path / "store", checkpoint_interval=0).orpheus
        assert orpheus.provenance.staged_names() == []
        assert not orpheus.db.has_table("in_flight")
        # ...but every committed version is intact.
        assert orpheus.cvd("proteins").version_count == 4

    def test_recovery_matches_replay_invariant(self, tmp_path, model):
        """The chaos gate's replay-determinism invariant on the unit
        suite's crash scenario: the recovered store must digest-equal a
        from-scratch rebuild of exactly the committed history."""
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        build_history(store.orpheus, model)
        crash(store)

        report = assert_replay_determinism(
            tmp_path / "store",
            lambda orpheus, versions: build_history(orpheus, model),
            tmp_path / "scratch",
        )
        assert report.figures["versions"]["proteins"] == 4

    def test_commit_after_recovery_continues_history(self, tmp_path, model):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        build_history(store.orpheus, model)
        crash(store)

        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        orpheus.checkout("proteins", 4, table_name="w5")
        vid = orpheus.commit("w5", message="after crash")
        assert vid == 5
        assert orpheus.cvd("proteins").version(5).parents == (4,)


class TestCrashScenarios:
    def test_torn_commit_record_rolls_back_only_that_commit(self, tmp_path):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        orpheus.init("t", [("k", "text"), ("v", "int")], rows=[("a", 1), ("b", 2)])
        orpheus.checkout("t", 1, table_name="w")
        orpheus.run("UPDATE w SET v = 10 WHERE k = 'a'")
        orpheus.commit("w", message="durable")
        orpheus.checkout("t", 2, table_name="w2")
        orpheus.run("DELETE FROM w2 WHERE k = 'b'")
        orpheus.commit("w2", message="torn away")
        crash(store)

        # Tear the tail of the last (commit) frame: the classic partial
        # write of a crash mid-append.
        wal_path = tmp_path / "store" / "wal.log"
        wal_path.write_bytes(wal_path.read_bytes()[:-4])

        orpheus = Store.open(tmp_path / "store", checkpoint_interval=0).orpheus
        assert orpheus.cvd("t").version_count == 2
        assert orpheus.version_log("t")[-1]["message"] == "durable"

    def test_ops_journaled_after_torn_tail_recovery_survive(self, tmp_path):
        """Recovery truncates the torn tail, so records appended by the
        next session land at the valid end of the log, not after garbage
        no reader would ever reach."""
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        store.orpheus.create_user("before")
        crash(store)
        wal_path = tmp_path / "store" / "wal.log"
        with open(wal_path, "ab") as handle:
            handle.write(b"OWL1\x00\x01partial")  # crash mid-append

        second = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert second.recovery_warnings  # the torn tail was reported
        second.orpheus.create_user("after")
        crash(second)

        third = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert third.orpheus.access.has_user("before")
        assert third.orpheus.access.has_user("after")

    def test_crash_between_snapshot_and_compaction(self, tmp_path):
        """CURRENT repointed but the WAL still holds pre-snapshot records:
        replay must skip them (lsn <= snapshot lsn), not double-apply."""
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        orpheus.init("t", [("v", "int")], rows=[(1,)])
        orpheus.checkout("t", 1, table_name="w")
        orpheus.commit("w", message="second")
        pre_compaction = (tmp_path / "store" / "wal.log").read_bytes()
        store.checkpoint()
        crash(store)
        # Undo the compaction, as if the crash hit between the CURRENT
        # rename and the WAL rewrite.
        (tmp_path / "store" / "wal.log").write_bytes(pre_compaction)

        orpheus = Store.open(tmp_path / "store", checkpoint_interval=0).orpheus
        assert orpheus.cvd("t").version_count == 2  # not four

    def test_crash_mid_snapshot_leaves_previous_state(self, tmp_path):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        store.orpheus.init("t", [("v", "int")], rows=[(1,)])
        store.checkpoint()
        store.orpheus.create_user("late")
        # A half-written snapshot directory that never got renamed.
        half = tmp_path / "store" / "snapshots" / "snap-00000099.tmp"
        half.mkdir()
        (half / "manifest.json").write_text("{ truncated")
        crash(store)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert recovered.orpheus.access.has_user("late")
        assert recovered.orpheus.cvd("t").version_count == 1

    def test_durable_dml_reading_staged_state_survives_crash(self, tmp_path):
        """INSERT INTO durable SELECT ... FROM staged cannot be replayed
        once staging is gone; the barrier checkpoint must make its effect
        durable anyway."""
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        orpheus.init("t", [("k", "text"), ("v", "int")], rows=[("a", 1)])
        orpheus.checkout("t", 1, table_name="wk")
        orpheus.run("CREATE TABLE durable (k TEXT, v INT)")
        orpheus.run("INSERT INTO durable SELECT k, v FROM wk")
        crash(store)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert recovered.recovery_warnings == []
        rows = recovered.orpheus.run("SELECT k, v FROM durable").rows
        assert rows == [("a", 1)]

    def test_partition_placement_survives_crash(self, tmp_path):
        """A commit into partitioned storage is placed by a live policy the
        crash destroys; replay must land the version in the partition the
        acknowledged commit used, not re-decide with the fallback rule."""
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        orpheus.optimize("proteins")
        store.checkpoint()  # compacts the optimize record away
        orpheus.checkout("proteins", 4, table_name="w5")
        vid = orpheus.commit("w5", message="placed by live policy")
        model = orpheus.cvd("proteins").model
        expected_partition = model.partition_of(vid)
        expected_rows = orpheus.cvd("proteins").checkout_rows([vid])
        crash(store)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        cvd = recovered.orpheus.cvd("proteins")
        assert cvd.model.partition_of(vid) == expected_partition
        assert cvd.checkout_rows([vid]) == expected_rows

    def test_wal_grows_by_delta_not_database(self, tmp_path):
        """Each commit's WAL append is O(changed records): appending one
        row to an ever-growing CVD must not grow the per-commit record."""
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        orpheus.init(
            "t",
            [("k", "int"), ("v", "int")],
            rows=[(i, i) for i in range(500)],
            primary_key=("k",),
        )
        sizes = []
        for step in range(4):
            before = store.wal_size_bytes()
            orpheus.checkout("t", step + 1, table_name="w")
            orpheus.run(f"INSERT INTO w VALUES (NULL, {1000 + step}, {step})")
            orpheus.commit("w", message=f"step {step}")
            sizes.append(store.wal_size_bytes() - before)
        crash(store)
        # Every commit record is small and flat, while the version itself
        # holds 500+ records (a full-membership record would be ~10x this).
        assert max(sizes) < 1200, sizes
        assert max(sizes) < 1.5 * min(sizes), sizes

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert recovered.orpheus.cvd("t").version_count == 5
        assert recovered.orpheus.cvd("t").version(5).num_records == 504
