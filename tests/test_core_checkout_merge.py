"""Multi-version checkout merges, PK precedence, and bitmap-driven diff —
exercised through a real CVD over every registered data model.

The Section 2.2 merge rule: checking out several versions merges them with
the *first listed version winning* primary-key conflicts.  These tests pin
that semantics now that the merge runs on RidSet algebra plus batched
slot fetches instead of per-row dict probes.
"""

from __future__ import annotations

import pytest

from repro.core.cvd import CVD
from repro.core.datamodels import MODEL_REGISTRY
from repro.storage.engine import Database
from repro.storage.ridset import RidSet
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType

ALL_MODELS = sorted(MODEL_REGISTRY)

SCHEMA = TableSchema(
    [
        Column("key", DataType.TEXT),
        Column("value", DataType.INTEGER),
    ],
    ("key",),
)


def build_cvd(model_name: str) -> tuple[CVD, dict[str, int]]:
    """A small branched history with conflicting edits on both branches.

    v1 = {a:1, b:2, c:3}
    v2 (from v1): a -> 10, adds d:4
    v3 (from v1): a -> 20, drops b, adds e:5
    """
    cvd = CVD(Database(), "m", SCHEMA, model=MODEL_REGISTRY[model_name])
    cvd.init_version([("a", 1), ("b", 2), ("c", 3)])
    rows = [list(r) for r in cvd.checkout_rows([1])]
    by_key = {r[1]: r for r in rows}
    v2_rows = [
        (by_key["a"][0], "a", 10),
        tuple(by_key["b"]),
        tuple(by_key["c"]),
        (None, "d", 4),
    ]
    v2 = cvd.commit_rows((1,), v2_rows)
    v3_rows = [
        (by_key["a"][0], "a", 20),
        tuple(by_key["c"]),
        (None, "e", 5),
    ]
    v3 = cvd.commit_rows((1,), v3_rows)
    return cvd, {"v2": v2, "v3": v3}


def as_mapping(rows) -> dict[str, int]:
    return {row[1]: row[2] for row in rows}


class TestMergeAcrossModels:
    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_first_version_wins_pk_conflicts(self, model_name):
        cvd, vids = build_cvd(model_name)
        merged = as_mapping(cvd.checkout_rows([vids["v2"], vids["v3"]]))
        assert merged == {"a": 10, "b": 2, "c": 3, "d": 4, "e": 5}
        flipped = as_mapping(cvd.checkout_rows([vids["v3"], vids["v2"]]))
        assert flipped == {"a": 20, "b": 2, "c": 3, "d": 4, "e": 5}

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_merge_has_no_duplicate_rids_or_keys(self, model_name):
        cvd, vids = build_cvd(model_name)
        merged = cvd.checkout_rows([vids["v2"], vids["v3"], 1])
        rids = [row[0] for row in merged]
        keys = [row[1] for row in merged]
        assert len(rids) == len(set(rids))
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_merge_with_ancestor_adds_nothing_new(self, model_name):
        """Merging a version with its own parent only resurrects rows the
        child dropped — here v3 dropped b, so [v3, v1] restores b:2."""
        cvd, vids = build_cvd(model_name)
        merged = as_mapping(cvd.checkout_rows([vids["v3"], 1]))
        assert merged == {"a": 20, "b": 2, "c": 3, "e": 5}

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_three_way_merge_rid_union(self, model_name):
        cvd, vids = build_cvd(model_name)
        merged = cvd.checkout_rows([1, vids["v2"], vids["v3"]])
        merged_rids = RidSet(row[0] for row in merged)
        # v1 listed first: its a/b/c win; v2 contributes d, v3 contributes e.
        assert as_mapping(merged) == {
            "a": 1,
            "b": 2,
            "c": 3,
            "d": 4,
            "e": 5,
        }
        union = RidSet.union_all(
            cvd.member_rids(v) for v in (1, vids["v2"], vids["v3"])
        )
        assert merged_rids.issubset(union)

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_checkout_into_multi_version(self, model_name):
        cvd, vids = build_cvd(model_name)
        cvd.checkout_into([vids["v2"], vids["v3"]], "work")
        rows = cvd.db.query("SELECT * FROM work")
        assert as_mapping(rows) == {"a": 10, "b": 2, "c": 3, "d": 4, "e": 5}


class TestDiffAcrossModels:
    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_diff_matches_membership_algebra(self, model_name):
        cvd, vids = build_cvd(model_name)
        v2, v3 = vids["v2"], vids["v3"]
        only_2, only_3 = cvd.diff(v2, v3)
        members_2, members_3 = cvd.member_rids(v2), cvd.member_rids(v3)
        assert RidSet(r[0] for r in only_2) == members_2 - members_3
        assert RidSet(r[0] for r in only_3) == members_3 - members_2
        # Rows come back ascending by rid (the batched-fetch contract).
        assert [r[0] for r in only_2] == sorted(r[0] for r in only_2)

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_diff_same_version_is_empty(self, model_name):
        cvd, vids = build_cvd(model_name)
        assert cvd.diff(vids["v2"], vids["v2"]) == ([], [])

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_fetch_rows_subset_contract(self, model_name):
        """DataModel.fetch_rows returns exactly the requested rows of the
        version, ascending by rid, for every model."""
        cvd, vids = build_cvd(model_name)
        v2 = vids["v2"]
        members = sorted(cvd.member_rids(v2))
        subset = RidSet(members[::2])
        rows = cvd.model.fetch_rows(v2, subset)
        assert [row[0] for row in rows] == sorted(subset)
        full = {row[0]: row for row in cvd.model.fetch_version(v2)}
        for row in rows:
            assert full[row[0]] == row
