"""End-to-end ``orpheus serve``: real process, real sockets, clean exit.

This is the CI serve smoke: start the server as a subprocess, drive
concurrent checkouts over TCP, request shutdown, and assert a clean exit.
"""

import json
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.cli.main import main

SRC = str(Path(__file__).resolve().parent.parent / "src")

# Server-subprocess suite: generous per-module override of conftest's
# per-test default timeout.
pytestmark = pytest.mark.timeout(300)


@pytest.fixture
def populated_store(tmp_path):
    store = str(tmp_path / "state.orpheusdb")
    csv = tmp_path / "data.csv"
    csv.write_text("k,v\na,1\nb,2\nc,3\n")
    assert main(
        ["--store", store, "init", "-n", "t", "-f", str(csv), "-s", "k:text,v:int"]
    ) == 0
    assert main(["--store", store, "checkout", "t", "-v", "1", "-t", "w"]) == 0
    assert main(["--store", store, "run", "UPDATE w SET v = 9 WHERE k = 'a'"]) == 0
    assert main(["--store", store, "commit", "-t", "w", "-m", "v2"]) == 0
    return store


def tcp_request(port: int, payload: dict) -> dict:
    with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
        conn.sendall(json.dumps(payload).encode() + b"\n")
        with conn.makefile("rb") as reader:
            return json.loads(reader.readline())


class TestServeCommand:
    def test_serve_smoke(self, populated_store):
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "--store",
                populated_store,
                "serve",
                "--readers",
                "3",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": SRC},
        )
        try:
            banner = server.stdout.readline()
            assert "serving" in banner, (banner, server.stderr.read())
            port = int(banner.split(":")[-1].split()[0])

            errors = []

            def client(worker: int):
                try:
                    for i in range(8):
                        vid = (worker + i) % 2 + 1
                        reply = tcp_request(
                            port, {"op": "checkout", "cvd": "t", "vids": [vid]}
                        )
                        assert reply["ok"] and reply["count"] == 3
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(n,)) for n in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []

            status = tcp_request(port, {"op": "status"})["status"]
            assert status["cache"]["hits"] > 0

            assert tcp_request(port, {"op": "shutdown"})["ok"]
            assert server.wait(timeout=30) == 0
            assert "shutdown clean" in server.stdout.read()
        finally:
            if server.poll() is None:  # pragma: no cover - failure path
                server.kill()
                server.wait()

    def test_serve_refuses_second_writer_and_follow_works(self, populated_store):
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "--store", populated_store, "serve"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": SRC},
        )
        try:
            banner = server.stdout.readline()
            port = int(banner.split(":")[-1].split()[0])
            # A second writer-mode server loses the lock race...
            second = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli",
                    "--store", populated_store, "serve",
                ],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": SRC},
                timeout=60,
            )
            assert second.returncode == 1
            assert "--follow" in second.stderr
            # ...while --follow serves read-only next to the live writer.
            follower = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli",
                    "--store", populated_store, "serve", "--follow",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env={"PYTHONPATH": SRC},
            )
            try:
                follower_banner = follower.stdout.readline()
                assert "follower mode" in follower_banner
                follower_port = int(follower_banner.split(":")[-1].split()[0])
                reply = tcp_request(
                    follower_port, {"op": "checkout", "cvd": "t", "vids": [2]}
                )
                assert reply["ok"] and reply["count"] == 3
                assert tcp_request(follower_port, {"op": "shutdown"})["ok"]
                assert follower.wait(timeout=30) == 0
            finally:
                if follower.poll() is None:  # pragma: no cover
                    follower.kill()
                    follower.wait()
            assert tcp_request(port, {"op": "shutdown"})["ok"]
            assert server.wait(timeout=30) == 0
        finally:
            if server.poll() is None:  # pragma: no cover - failure path
                server.kill()
                server.wait()

    def test_serve_ro_flag_forces_follower_mode(self, populated_store):
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "--store", populated_store, "--ro", "serve",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": SRC},
        )
        try:
            banner = server.stdout.readline()
            assert "follower mode" in banner, (banner, server.stderr.read())
            port = int(banner.split(":")[-1].split()[0])
            reply = tcp_request(port, {"op": "checkout", "cvd": "t", "vids": [1]})
            assert reply["ok"] and reply["count"] == 3
            assert tcp_request(port, {"op": "shutdown"})["ok"]
            assert server.wait(timeout=30) == 0
        finally:
            if server.poll() is None:  # pragma: no cover - failure path
                server.kill()
                server.wait()
