"""Integration tests for the OrpheusDB facade: the paper's command set."""

import pytest

from repro.errors import (
    PermissionDeniedError,
    StagingError,
    VersioningError,
)
from tests.conftest import PAPER_ROWS
from repro.workloads.protein import PROTEIN_COLUMNS, PROTEIN_PRIMARY_KEY


class TestInitLsDrop:
    def test_init_and_ls(self, orpheus):
        orpheus.init("a", [("x", "int")], rows=[(1,)])
        orpheus.init("b", [("y", "text")], rows=[("q",)])
        assert orpheus.ls() == ["a", "b"]

    def test_duplicate_init_rejected(self, orpheus):
        orpheus.init("a", [("x", "int")])
        with pytest.raises(VersioningError):
            orpheus.init("a", [("x", "int")])

    def test_drop_removes_backing_tables(self, orpheus):
        orpheus.init("a", [("x", "int")], rows=[(1,)])
        orpheus.drop("a")
        assert orpheus.ls() == []
        assert not [t for t in orpheus.db.table_names() if t.startswith("a__")]

    def test_drop_with_staged_checkout_rejected(self, orpheus):
        orpheus.init("a", [("x", "int")], rows=[(1,)])
        orpheus.checkout("a", 1, table_name="w")
        with pytest.raises(StagingError):
            orpheus.drop("a")

    def test_init_from_table(self, orpheus):
        orpheus.db.execute("CREATE TABLE src (x int)")
        orpheus.db.execute("INSERT INTO src VALUES (1), (2)")
        cvd = orpheus.init_from_table("a", "src")
        assert cvd.record_count == 2


class TestCheckoutCommitCycle:
    def test_figure1_history(self, protein_cvd):
        """The conftest fixture recreates Figure 1; verify its shape."""
        cvd = protein_cvd
        assert cvd.version_count == 4
        assert cvd.record_count == 5  # r1..r5 of Figure 1c
        assert cvd.version(4).parents == (2, 3)
        # v4 merges v2 (4 records) and v3 (2 records): r4 wins the PK clash
        # with r1, so v4 = {r2 r3 r4 r5} ... plus nothing else.
        assert len(cvd.member_rids(4)) == 4

    def test_commit_drops_staging_table(self, orpheus):
        orpheus.init("a", [("x", "int")], rows=[(1,)])
        orpheus.checkout("a", 1, table_name="w")
        orpheus.commit("w")
        assert not orpheus.db.has_table("w")
        with pytest.raises(StagingError):
            orpheus.commit("w")

    def test_checkout_existing_table_rejected(self, orpheus):
        orpheus.init("a", [("x", "int")], rows=[(1,)])
        orpheus.db.execute("CREATE TABLE w (x int)")
        with pytest.raises(StagingError):
            orpheus.checkout("a", 1, table_name="w")

    def test_double_checkout_same_name_rejected(self, orpheus):
        orpheus.init("a", [("x", "int")], rows=[(1,)])
        orpheus.checkout("a", 1, table_name="w")
        with pytest.raises(StagingError):
            orpheus.checkout("a", 1, table_name="w")

    def test_checkout_unknown_version(self, orpheus):
        orpheus.init("a", [("x", "int")], rows=[(1,)])
        from repro.errors import VersionNotFoundError

        with pytest.raises(VersionNotFoundError):
            orpheus.checkout("a", 9, table_name="w")

    def test_commit_records_checkout_and_commit_times(self, orpheus):
        orpheus.init("a", [("x", "int")], rows=[(1,)])
        orpheus.checkout("a", 1, table_name="w")
        vid = orpheus.commit("w")
        version = orpheus.cvd("a").version(vid)
        assert version.checkout_time is not None
        assert version.commit_time > version.checkout_time


class TestUsersAndAccess:
    def test_create_login_whoami(self, orpheus):
        orpheus.create_user("alice")
        orpheus.config("alice")
        assert orpheus.whoami() == "alice"

    def test_duplicate_user_rejected(self, orpheus):
        orpheus.create_user("alice")
        with pytest.raises(VersioningError):
            orpheus.create_user("alice")

    def test_unknown_login_rejected(self, orpheus):
        with pytest.raises(PermissionDeniedError):
            orpheus.config("mallory")

    def test_staged_table_private_to_owner(self, orpheus):
        orpheus.create_user("alice")
        orpheus.create_user("bob")
        orpheus.init("a", [("x", "int")], rows=[(1,)])
        orpheus.config("alice")
        orpheus.checkout("a", 1, table_name="w")
        orpheus.config("bob")
        with pytest.raises(PermissionDeniedError):
            orpheus.commit("w")
        orpheus.config("alice")
        assert orpheus.commit("w") == 2


class TestCSVWorkflow:
    def test_checkout_commit_csv_roundtrip(self, orpheus, tmp_path):
        orpheus.init(
            "p",
            PROTEIN_COLUMNS,
            rows=PAPER_ROWS,
            primary_key=PROTEIN_PRIMARY_KEY,
        )
        path = tmp_path / "work.csv"
        orpheus.checkout_csv("p", 1, path)
        text = path.read_text()
        assert "protein1" in text.splitlines()[0]
        assert "rid" not in text.splitlines()[0]  # rids stay internal
        # External edit: rescore one row, append a new one.
        lines = text.strip().splitlines()
        lines[1] = lines[1].rsplit(",", 1)[0] + ",83"
        lines.append("ENSP309334,ENSP346022,0,227,975")
        path.write_text("\n".join(lines) + "\n")
        vid = orpheus.commit_csv(path, message="external edit")
        cvd = orpheus.cvd("p")
        assert cvd.version_count == 2
        # 2 unchanged rows matched by value; 2 fresh records created.
        assert cvd.record_count == 5
        assert len(cvd.member_rids(vid)) == 4

    def test_init_from_csv(self, orpheus, tmp_path):
        path = tmp_path / "init.csv"
        path.write_text("x,y\n1,a\n2,b\n")
        cvd = orpheus.init_from_csv("c", path, [("x", "int"), ("y", "text")])
        assert cvd.record_count == 2
        rows = sorted(r[1:] for r in cvd.checkout_rows([1]))
        assert rows == [(1, "a"), (2, "b")]

    def test_init_from_csv_blank_typed_fields_are_null(self, orpheus, tmp_path):
        """An empty cell in an INT/REAL column is NULL, not a crash."""
        path = tmp_path / "blank.csv"
        path.write_text("k,score,ratio,note\na,,0.5,\nb,2,,hi\n")
        cvd = orpheus.init_from_csv(
            "c",
            path,
            [("k", "text"), ("score", "int"), ("ratio", "real"), ("note", "text")],
        )
        rows = sorted(r[1:] for r in cvd.checkout_rows([1]))
        # TEXT keeps the empty string (a legitimate value); INT/REAL blank
        # cells become NULL.
        assert rows == [("a", None, 0.5, ""), ("b", 2, None, "hi")]

    def test_csv_roundtrip_preserves_nulls(self, orpheus, tmp_path):
        """checkout_csv writes NULL as an empty cell; commit_csv reads it
        back as NULL instead of raising TypeMismatchError."""
        orpheus.init(
            "c",
            [("k", "text"), ("score", "int")],
            rows=[("a", None), ("b", 2)],
            primary_key=("k",),
        )
        path = tmp_path / "work.csv"
        orpheus.checkout_csv("c", 1, path)
        assert path.read_text() == "k,score\na,\nb,2\n"
        # External edit adds another blank-scored row.
        path.write_text(path.read_text() + "d,\n")
        vid = orpheus.commit_csv(path, message="blank survives")
        rows = sorted(r[1:] for r in orpheus.cvd("c").checkout_rows([vid]))
        assert rows == [("a", None), ("b", 2), ("d", None)]
        # Unchanged rows matched by value: no fresh rids for a and b.
        assert orpheus.cvd("c").record_count == 3


class TestRunSQL:
    def test_version_query(self, protein_cvd, orpheus):
        result = orpheus.run("SELECT count(*) FROM VERSION 2 OF CVD proteins")
        assert result.rows == [(4,)]

    def test_aggregate_across_versions(self, protein_cvd, orpheus):
        result = orpheus.run(
            "SELECT vid, count(*) AS n FROM ALL VERSIONS OF CVD proteins "
            "AS av GROUP BY vid ORDER BY vid"
        )
        assert result.rows == [(1, 3), (2, 4), (3, 2), (4, 4)]

    def test_join_two_versions(self, protein_cvd, orpheus):
        result = orpheus.run(
            "SELECT count(*) FROM VERSION 2 OF CVD proteins AS a, "
            "VERSION 3 OF CVD proteins AS b "
            "WHERE a.protein1 = b.protein1 AND a.protein2 = b.protein2"
        )
        # v2 = {r2 r3 r4 r5}, v3 = {r1 r2}: r2~r2 and r4~r1 share PKs.
        assert result.rows == [(2,)]

    def test_versions_with_predicate(self, protein_cvd, orpheus):
        result = orpheus.run(
            "SELECT DISTINCT vid FROM ALL VERSIONS OF CVD proteins AS av "
            "WHERE coexpression > 900 ORDER BY vid"
        )
        assert result.rows == [(2,), (4,)]


class TestDiffCommand:
    def test_diff(self, protein_cvd, orpheus):
        # v2 = {r2 r3 r4 r5}; v3 = {r1 r2}.
        only_2, only_3 = orpheus.diff("proteins", 2, 3)
        assert len(only_2) == 3  # r3, r4, r5
        assert len(only_3) == 1  # r1
        flipped_a, flipped_b = orpheus.diff("proteins", 3, 2)
        assert (len(flipped_a), len(flipped_b)) == (1, 3)
