"""End-to-end tests of the git-style command line."""

import json

import pytest

from repro.cli.main import main


@pytest.fixture
def store(tmp_path):
    return str(tmp_path / "state.orpheusdb")


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(
        "protein1,protein2,score\n"
        "ENSP1,ENSP2,10\n"
        "ENSP3,ENSP4,20\n"
    )
    return str(path)


def run(store, *args):
    return main(["--store", store, *args])


@pytest.fixture
def initialized(store, csv_file):
    assert run(
        store,
        "init",
        "-n", "p",
        "-f", csv_file,
        "-s", "protein1:text,protein2:text,score:int",
        "--primary-key", "protein1,protein2",
    ) == 0
    return store


class TestLifecycle:
    def test_init_ls(self, initialized, capsys):
        assert run(initialized, "ls") == 0
        assert "p: 1 versions, 2 records" in capsys.readouterr().out

    def test_checkout_commit_cycle(self, initialized, capsys):
        assert run(initialized, "checkout", "p", "-v", "1", "-t", "work") == 0
        assert run(
            initialized, "run", "UPDATE work SET score = 99 WHERE score = 10"
        ) == 0
        assert run(initialized, "commit", "-t", "work", "-m", "bump") == 0
        out = capsys.readouterr().out
        assert "committed as version 2" in out
        assert run(
            initialized,
            "run",
            "SELECT score FROM VERSION 2 OF CVD p ORDER BY score",
        ) == 0
        out = capsys.readouterr().out
        assert "99" in out

    def test_csv_checkout_commit(self, initialized, tmp_path, capsys):
        out_csv = str(tmp_path / "w.csv")
        assert run(initialized, "checkout", "p", "-v", "1", "-f", out_csv) == 0
        content = open(out_csv).read().replace("10", "55")
        open(out_csv, "w").write(content)
        assert run(initialized, "commit", "-f", out_csv, "-m", "edit") == 0
        assert "committed as version 2" in capsys.readouterr().out

    def test_diff(self, initialized, capsys):
        run(initialized, "checkout", "p", "-v", "1", "-t", "w")
        run(initialized, "run", "DELETE FROM w WHERE score = 20")
        run(initialized, "commit", "-t", "w")
        assert run(initialized, "diff", "p", "1", "2") == 0
        out = capsys.readouterr().out
        assert "only in version 1: 1 records" in out

    def test_log(self, initialized, capsys):
        run(initialized, "checkout", "p", "-v", "1", "-t", "w")
        run(initialized, "commit", "-t", "w", "-m", "second")
        assert run(initialized, "log", "p") == 0
        out = capsys.readouterr().out
        assert "v2 <- [1]" in out and "second" in out

    def test_optimize(self, initialized, capsys):
        assert run(initialized, "optimize", "p", "--gamma", "2.0") == 0
        assert "partitioned into" in capsys.readouterr().out

    def test_drop(self, initialized, capsys):
        assert run(initialized, "drop", "p") == 0
        run(initialized, "ls")
        assert "p:" not in capsys.readouterr().out


class TestUsers:
    def test_user_flow(self, store, capsys):
        assert run(store, "create_user", "alice") == 0
        assert run(store, "config", "alice") == 0
        assert run(store, "whoami") == 0
        assert "alice" in capsys.readouterr().out


class TestErrors:
    def test_unknown_cvd_returns_nonzero(self, store, capsys):
        assert run(store, "checkout", "ghost", "-v", "1", "-t", "w") == 1
        assert "error" in capsys.readouterr().err

    def test_bad_schema_string(self, store, csv_file, capsys):
        assert run(store, "init", "-n", "x", "-f", csv_file, "-s", "broken") == 1

    def test_commit_unstaged_table(self, initialized, capsys):
        assert run(initialized, "commit", "-t", "nope") == 1


class TestPersistence:
    def test_state_survives_processes(self, initialized, capsys):
        """Each `run` call is a fresh load from the pickle store."""
        run(initialized, "checkout", "p", "-v", "1", "-t", "w")
        run(initialized, "commit", "-t", "w", "-m", "persisted")
        assert run(initialized, "ls") == 0
        assert "2 versions" in capsys.readouterr().out


class TestCheckpointCommand:
    def test_checkpoint_compacts_wal(self, initialized, capsys):
        from pathlib import Path

        assert run(initialized, "checkpoint") == 0
        assert "checkpointed to snap-" in capsys.readouterr().out
        store_dir = Path(initialized)
        assert (store_dir / "CURRENT").exists()
        assert (store_dir / "wal.log").stat().st_size == 0
        # State is intact after the checkpoint.
        assert run(initialized, "ls") == 0
        assert "p: 1 versions" in capsys.readouterr().out

    def test_store_is_a_directory_with_wal(self, initialized):
        from pathlib import Path

        store_dir = Path(initialized)
        assert store_dir.is_dir()
        assert (store_dir / "wal.log").exists()


class TestLegacyPickleStore:
    @pytest.fixture
    def legacy_store(self, tmp_path):
        """An existing pickle-file store, as written by older releases."""
        import pickle

        from repro.core.orpheus import OrpheusDB

        path = tmp_path / "legacy.orpheusdb"
        with path.open("wb") as handle:
            pickle.dump(OrpheusDB(), handle)
        return str(path)

    def test_legacy_file_round_trip(self, legacy_store, csv_file, capsys):
        from pathlib import Path

        assert run(
            legacy_store,
            "init", "-n", "p", "-f", csv_file,
            "-s", "protein1:text,protein2:text,score:int",
        ) == 0
        assert Path(legacy_store).is_file()  # still a pickle, not a dir
        assert run(legacy_store, "ls") == 0
        assert "p: 1 versions" in capsys.readouterr().out

    def test_pre_journal_pickle_missing_attributes(self, tmp_path, csv_file):
        """Pickles written before the journal hooks existed lack the new
        attributes; every command, `run` included, must still work."""
        import pickle

        from repro.core.orpheus import OrpheusDB

        orpheus = OrpheusDB()
        for attr in ("_journal", "_replaying", "_ephemeral_dirty"):
            delattr(orpheus, attr)
        path = tmp_path / "old.orpheusdb"
        with path.open("wb") as handle:
            pickle.dump(orpheus, handle)

        assert run(
            str(path),
            "init", "-n", "p", "-f", csv_file,
            "-s", "protein1:text,protein2:text,score:int",
        ) == 0
        assert run(str(path), "run", "SELECT count(*) FROM VERSION 1 OF CVD p") == 0

    def test_legacy_save_leaves_no_temp_file(self, legacy_store, csv_file):
        from pathlib import Path

        run(
            legacy_store,
            "init", "-n", "p", "-f", csv_file,
            "-s", "protein1:text,protein2:text,score:int",
        )
        leftovers = [
            p.name
            for p in Path(legacy_store).parent.iterdir()
            if p.name.endswith(".tmp")
        ]
        assert leftovers == []


class TestOptimizedStatePersistence:
    def test_commit_after_optimize_across_processes(self, initialized, capsys):
        """Partitioned state survives CLI invocations after `optimize`:
        the WAL replays the optimize op (or a snapshot restores the model
        state plus the optimizer's decision state), and commits keep
        working under the live placement policy."""
        assert run(initialized, "optimize", "p", "--gamma", "2.0") == 0
        assert run(initialized, "checkout", "p", "-v", "1", "-t", "w") == 0
        assert run(initialized, "commit", "-t", "w", "-m", "post") == 0
        assert run(initialized, "run", "SELECT count(*) FROM VERSION 2 OF CVD p") == 0
        out = capsys.readouterr().out
        assert "committed as version 2" in out


class TestStatusCommand:
    def test_status_before_optimize(self, initialized, capsys):
        assert run(initialized, "status") == 0
        out = capsys.readouterr().out
        assert "store:" in out
        assert "wal:" in out
        assert "p: 1 versions, 2 records" in out
        assert "optimizer" not in out  # unpartitioned CVDs have none

    def test_status_reports_live_optimizer_across_processes(self, initialized, capsys):
        """The optimizer state `status` reports comes from the store, so
        it must survive the process boundary between CLI invocations."""
        assert run(initialized, "optimize", "p") == 0
        assert run(initialized, "checkout", "p", "-v", "1", "-t", "w") == 0
        assert run(initialized, "commit", "-t", "w", "-m", "more") == 0
        capsys.readouterr()
        assert run(initialized, "status") == 0
        out = capsys.readouterr().out
        assert "(partitioned_rlist)" in out
        assert "optimizer: live" in out
        assert "delta*" in out
        # One maintenance sample: the commit after optimize.
        assert "1 samples" in out

    def test_status_on_empty_store(self, store, capsys):
        assert run(store, "status") == 0
        assert "no CVDs" in capsys.readouterr().out

    def test_status_reports_dag_shape(self, initialized, capsys):
        assert run(initialized, "status") == 0
        out = capsys.readouterr().out
        # A fresh one-version CVD: no merges, depth 1, index not yet built.
        assert "dag: 1 versions, 0 merges, max depth 1, lineage index stale" in out

    def test_status_json_includes_dag_shape(self, initialized, capsys):
        assert run(initialized, "status", "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        shape = doc["cvds"][0]["dag"]
        assert shape == {
            "versions": 1,
            "merges": 0,
            "max_depth": 1,
            "lineage_index": "stale",
        }


class TestReadOnlyCLI:
    def test_ro_flag_serves_reads(self, initialized, capsys):
        assert run(initialized, "--ro", "ls") == 0
        assert "p: 1 versions" in capsys.readouterr().out
        assert run(initialized, "--ro", "status") == 0
        assert "(read-only view)" in capsys.readouterr().out
        assert run(
            initialized, "--ro", "run",
            "SELECT count(*) FROM VERSION 1 OF CVD p",
        ) == 0

    def test_ro_flag_rejects_writes(self, initialized, capsys):
        assert run(initialized, "--ro", "checkout", "p", "-v", "1", "-t", "w") == 1
        assert "read-only" in capsys.readouterr().err
        assert run(initialized, "--ro", "run", "DELETE FROM p__meta") == 1
        assert "read-only" in capsys.readouterr().err
        assert run(initialized, "--ro", "checkpoint") == 1
        assert "read-only" in capsys.readouterr().err

    def test_ro_checkout_csv_exports(self, initialized, tmp_path, capsys):
        out_csv = tmp_path / "export.csv"
        assert run(
            initialized, "--ro", "checkout", "p", "-v", "1", "-f", str(out_csv)
        ) == 0
        assert out_csv.read_text().startswith("protein1,")

    def test_locked_store_hints_at_ro_for_read_commands(self, initialized, capsys):
        """A store held by another process: read-only commands get a clean
        'retry or use --ro' message instead of the raw lock error."""
        from repro.persist import Store

        writer = Store.open(initialized)
        try:
            assert run(initialized, "status") == 1
            err = capsys.readouterr().err
            assert "in use by another process" in err
            assert "--ro" in err
            # Mutating commands get the message without the --ro hint.
            assert run(initialized, "create_user", "bob") == 1
            err = capsys.readouterr().err
            assert "in use by another process" in err
            assert "--ro" not in err
            # checkout -t stages a table, so its hint must not suggest
            # --ro (which would reject it); the -f export form keeps it.
            assert run(initialized, "checkout", "p", "-v", "1", "-t", "w") == 1
            assert "--ro" not in capsys.readouterr().err
            assert run(initialized, "checkout", "p", "-v", "1", "-f", "x.csv") == 1
            assert "--ro" in capsys.readouterr().err
            # And --ro actually works while the writer lives.
            assert run(initialized, "--ro", "ls") == 0
            assert "p: 1 versions" in capsys.readouterr().out
        finally:
            writer.close()

    def test_ro_on_missing_store_is_clean(self, tmp_path, capsys):
        assert run(str(tmp_path / "ghost"), "--ro", "ls") == 1
        assert "error" in capsys.readouterr().err

    def test_ro_on_legacy_pickle_rejects_writes_and_never_saves(
        self, tmp_path, capsys
    ):
        import pickle

        from repro.core.orpheus import OrpheusDB

        path = tmp_path / "legacy.orpheusdb"
        with path.open("wb") as handle:
            pickle.dump(OrpheusDB(), handle)
        before = path.read_bytes()
        assert run(str(path), "--ro", "create_user", "bob") == 1
        assert "read-only" in capsys.readouterr().err
        assert run(str(path), "--ro", "checkpoint") == 1
        assert "--ro never writes" in capsys.readouterr().err
        assert run(str(path), "--ro", "whoami") == 0
        assert run(str(path), "--ro", "run", "SELECT 1") == 0
        assert path.read_bytes() == before  # the pickle was never rewritten
