"""Unit tests for the version graph (Section 3.3)."""

import pytest

from repro.core.version import Version
from repro.core.version_graph import VersionGraph
from repro.errors import VersionNotFoundError, VersioningError


def figure4_graph() -> VersionGraph:
    """The paper's Figure 4: v1 -> {v2, v3} -> v4 (merge)."""
    graph = VersionGraph()
    graph.add_version(Version(1, (), num_records=3), {})
    graph.add_version(Version(2, (1,), num_records=3), {1: 2})
    graph.add_version(Version(3, (1,), num_records=4), {1: 3})
    graph.add_version(Version(4, (2, 3), num_records=6), {2: 3, 3: 4})
    return graph


class TestStructure:
    def test_roots_and_leaves(self):
        graph = figure4_graph()
        assert graph.roots() == [1]
        assert graph.leaves() == [4]

    def test_parents_children(self):
        graph = figure4_graph()
        assert graph.parents(4) == (2, 3)
        assert sorted(graph.children(1)) == [2, 3]

    def test_merge_detection(self):
        graph = figure4_graph()
        assert graph.version(4).is_merge
        assert not graph.version(2).is_merge
        assert not graph.is_tree()

    def test_edge_weights(self):
        graph = figure4_graph()
        assert graph.edge_weight(1, 2) == 2
        assert graph.edge_weight(3, 4) == 4
        with pytest.raises(VersioningError):
            graph.edge_weight(1, 4)

    def test_bipartite_edge_count(self):
        assert figure4_graph().num_bipartite_edges == 3 + 3 + 4 + 6


class TestMutation:
    def test_unknown_parent_rejected(self):
        graph = VersionGraph()
        with pytest.raises(VersionNotFoundError):
            graph.add_version(Version(2, (1,)), {1: 0})

    def test_duplicate_vid_rejected(self):
        graph = figure4_graph()
        with pytest.raises(VersioningError):
            graph.add_version(Version(1, ()), {})

    def test_weights_must_cover_parents(self):
        graph = figure4_graph()
        with pytest.raises(VersioningError):
            graph.add_version(Version(5, (2, 3)), {2: 1})


class TestTraversal:
    def test_topological_order(self):
        graph = figure4_graph()
        order = graph.topological_order()
        position = {vid: i for i, vid in enumerate(order)}
        for _p, child, _w in graph.edges():
            parent = _p
            assert position[parent] < position[child]

    def test_depth(self):
        graph = figure4_graph()
        assert graph.depth(1) == 1
        assert graph.depth(2) == 2
        assert graph.depth(4) == 3

    def test_ancestors_descendants(self):
        graph = figure4_graph()
        assert graph.ancestors(4) == {1, 2, 3}
        assert graph.descendants(1) == {2, 3, 4}
        assert graph.ancestors(1) == set()
        assert graph.descendants(4) == set()

    def test_depth_is_cached_not_recomputed(self, monkeypatch):
        graph = figure4_graph()
        calls = {"n": 0}
        original = VersionGraph.topological_order

        def counted(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(VersionGraph, "topological_order", counted)
        assert graph.depth(4) == 3
        assert graph.depth(2) == 2
        assert graph.depth(1) == 1
        # One topological pass fills the cache; repeat calls are dict hits.
        assert calls["n"] == 1
        # Mutation extends the cache incrementally — still no recompute.
        graph.add_version(Version(5, (4,), num_records=6), {4: 6})
        assert graph.depth(5) == 4
        assert calls["n"] == 1
        assert graph.max_depth() == 4

    def test_dag_shape_helpers(self):
        graph = figure4_graph()
        assert graph.merge_count() == 1
        assert graph.max_depth() == 3
        assert graph.lineage_status() == "stale"  # index never probed
        graph.descendants(1)
        assert graph.lineage_status() == "fresh"

    def test_subtree_nodes_blocked_edge(self):
        graph = figure4_graph()
        # Block 1->3: reachable set from 1 through tree edges avoids 3 but
        # still reaches 4 via 2.
        assert graph.subtree_nodes(1, (1, 3)) == {1, 2, 4}

    def test_missing_version_raises(self):
        graph = figure4_graph()
        with pytest.raises(VersionNotFoundError):
            graph.version(99)
