"""Read-only store opens: shared locks, zero-write recovery, lsn refresh.

The contract under test (ISSUE 4 tentpole): ``Store.open(mode="ro")``
takes a *shared* advisory lock, recovers purely in memory, provably never
changes a byte on disk, and catches up with a live writer by replaying
only the WAL tail past its last seen lsn.
"""

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import (
    PersistenceError,
    ReadOnlyError,
    RecoveryError,
    StoreLockedError,
)
from repro.persist import Store

SRC = str(Path(__file__).resolve().parent.parent / "src")


def tree_hash(root: Path) -> str:
    """Order-stable digest of every file's relative path and bytes."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if path.is_file():
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
    return digest.hexdigest()


def build_store(path, checkpoint_interval=0, versions=3):
    """A small CVD history: v1 init, then chained single-row edits."""
    store = Store.open(path, checkpoint_interval=checkpoint_interval)
    orpheus = store.orpheus
    orpheus.init(
        "t",
        [("k", "text"), ("v", "int")],
        rows=[("a", 1), ("b", 2)],
        primary_key=("k",),
    )
    for step in range(versions - 1):
        work = f"w{step}"
        orpheus.checkout("t", step + 1, table_name=work)
        orpheus.run(f"INSERT INTO {work} (k, v) VALUES ('n{step}', {step})")
        orpheus.commit(work, message=f"v{step + 2}")
    return store


class TestLockMatrix:
    def test_reader_coexists_with_live_writer(self, tmp_path):
        writer = build_store(tmp_path / "s")
        reader = Store.open(tmp_path / "s", mode="ro")
        assert reader.orpheus.cvd("t").version_count == 3
        reader.close()
        writer.close()

    def test_reader_coexists_with_reader(self, tmp_path):
        build_store(tmp_path / "s").close()
        a = Store.open(tmp_path / "s", mode="ro")
        b = Store.open(tmp_path / "s", mode="ro")
        assert a.orpheus.checkout_rows("t", 3) == b.orpheus.checkout_rows("t", 3)
        a.close()
        b.close()

    def test_writer_rejected_while_writer_lives(self, tmp_path):
        writer = build_store(tmp_path / "s")
        with pytest.raises(StoreLockedError):
            Store.open(tmp_path / "s")
        writer.close()

    def test_writer_allowed_while_readers_live(self, tmp_path):
        # Chosen policy: readers never block the writer (they catch up via
        # refresh), so serving keeps running across writer restarts.
        build_store(tmp_path / "s").close()
        reader = Store.open(tmp_path / "s", mode="ro")
        writer = Store.open(tmp_path / "s")
        writer.close()
        reader.close()

    def test_writer_usable_again_after_reader_closes(self, tmp_path):
        build_store(tmp_path / "s").close()
        Store.open(tmp_path / "s", mode="ro").close()
        writer = Store.open(tmp_path / "s")
        writer.orpheus.create_user("late")
        writer.close()

    def test_read_only_needs_an_existing_store(self, tmp_path):
        with pytest.raises(PersistenceError):
            Store.open(tmp_path / "missing", mode="ro")
        assert not (tmp_path / "missing").exists()

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            Store.open(tmp_path / "s", mode="rx")


class TestMultiProcessLocks:
    """The same matrix across real process boundaries."""

    @staticmethod
    def try_open(path, mode):
        """(returncode, stderr) of a child process opening the store."""
        script = (
            "import sys\n"
            "from repro.persist import Store\n"
            f"store = Store.open({str(path)!r}, mode={mode!r})\n"
            "print(store.orpheus.cvd('t').version_count)\n"
            "store.close()\n"
        )
        return subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC},
            timeout=60,
        )

    def test_second_process_writer_rejected(self, tmp_path):
        writer = build_store(tmp_path / "s")
        result = self.try_open(tmp_path / "s", "rw")
        assert result.returncode != 0
        assert "in use by another process" in result.stderr
        writer.close()

    def test_second_process_reader_accepted(self, tmp_path):
        writer = build_store(tmp_path / "s")
        result = self.try_open(tmp_path / "s", "ro")
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "3"
        writer.close()

    def test_reader_process_next_to_reader(self, tmp_path):
        build_store(tmp_path / "s").close()
        reader = Store.open(tmp_path / "s", mode="ro")
        result = self.try_open(tmp_path / "s", "ro")
        assert result.returncode == 0, result.stderr
        reader.close()


class TestReadOnlyWritesNothing:
    @pytest.mark.parametrize("checkpoint_interval", [0, 2])
    def test_directory_byte_identical(self, tmp_path, checkpoint_interval):
        build_store(tmp_path / "s", checkpoint_interval=checkpoint_interval).close()
        before = tree_hash(tmp_path / "s")
        store = Store.open(tmp_path / "s", mode="ro")
        store.orpheus.checkout_rows("t", [1, 3])
        store.orpheus.run("SELECT count(*) FROM VERSION 2 OF CVD t")
        store.refresh()
        store.close()
        assert tree_hash(tmp_path / "s") == before

    def test_torn_wal_tail_not_truncated(self, tmp_path):
        """A writer open repairs a torn tail; a read-only open must not."""
        build_store(tmp_path / "s").close()
        wal = tmp_path / "s" / "wal.log"
        wal.write_bytes(wal.read_bytes() + b"torn-half-frame")
        before = tree_hash(tmp_path / "s")
        store = Store.open(tmp_path / "s", mode="ro")
        assert store.orpheus.cvd("t").version_count == 3
        store.close()
        assert tree_hash(tmp_path / "s") == before
        # ...and the writer still repairs it afterwards.
        writer = Store.open(tmp_path / "s")
        assert any("torn" in w for w in writer.recovery_warnings)
        writer.close()

    def test_checkout_csv_exports_without_staging(self, tmp_path):
        build_store(tmp_path / "s").close()
        before = tree_hash(tmp_path / "s")
        store = Store.open(tmp_path / "s", mode="ro")
        out = tmp_path / "export.csv"
        store.orpheus.checkout_csv("t", 3, out)
        assert out.read_text().splitlines()[0] == "k,v"
        assert store.orpheus.provenance.staged_names() == []
        store.close()
        assert tree_hash(tmp_path / "s") == before

    def test_mutations_rejected(self, tmp_path):
        build_store(tmp_path / "s").close()
        store = Store.open(tmp_path / "s", mode="ro")
        orpheus = store.orpheus
        with pytest.raises(ReadOnlyError):
            orpheus.init("u", [("x", "int")])
        with pytest.raises(ReadOnlyError):
            orpheus.checkout("t", 1, table_name="w")
        with pytest.raises(ReadOnlyError):
            orpheus.drop("t")
        with pytest.raises(ReadOnlyError):
            orpheus.run("INSERT INTO t__meta (vid) VALUES (99)")
        with pytest.raises(ReadOnlyError):
            orpheus.create_user("eve")
        with pytest.raises(ReadOnlyError):
            orpheus.config("default")
        with pytest.raises(ReadOnlyError):
            orpheus.optimize("t")
        with pytest.raises(ReadOnlyError):
            store.checkpoint()
        # The read path stays open.
        assert len(orpheus.checkout_rows("t", 3)) == 4
        store.close()


class TestRefresh:
    def test_incremental_tail_replay(self, tmp_path):
        writer = build_store(tmp_path / "s")
        reader = Store.open(tmp_path / "s", mode="ro")
        assert reader.orpheus.cvd("t").version_count == 3

        writer.orpheus.checkout("t", 3, table_name="w")
        writer.orpheus.run("INSERT INTO w (k, v) VALUES ('z', 9)")
        writer.orpheus.commit("w", message="v4")

        result = reader.refresh()
        assert result.applied == 1
        assert not result.full_reload
        assert result.touched_cvds == {"t"}
        assert reader.last_lsn == writer.last_lsn
        expected = writer.orpheus.checkout_rows("t", 4)
        assert reader.orpheus.checkout_rows("t", 4) == expected
        # Caught up: the next refresh applies nothing.
        again = reader.refresh()
        assert again.applied == 0 and not again.full_reload
        writer.close()
        reader.close()

    def test_refresh_after_checkpoint_full_reload(self, tmp_path):
        writer = build_store(tmp_path / "s")
        reader = Store.open(tmp_path / "s", mode="ro")
        writer.orpheus.checkout("t", 3, table_name="w")
        writer.orpheus.run("INSERT INTO w (k, v) VALUES ('z', 9)")
        writer.orpheus.commit("w", message="v4")
        writer.checkpoint()  # compacts the tail the reader never saw
        result = reader.refresh()
        assert result.full_reload
        assert reader.orpheus.cvd("t").version_count == 4
        writer.close()
        reader.close()

    def test_refresh_classifies_schema_evolution(self, tmp_path):
        writer = build_store(tmp_path / "s")
        reader = Store.open(tmp_path / "s", mode="ro")
        writer.orpheus.checkout("t", 3, table_name="w")
        writer.orpheus.run("ALTER TABLE w ADD COLUMN note text")
        writer.orpheus.commit("w", message="wider")
        result = reader.refresh()
        assert result.schema_changed_cvds == {"t"}
        assert "note" in reader.orpheus.cvd("t").data_schema.column_names
        writer.close()
        reader.close()

    def test_refresh_classifies_migration(self, tmp_path):
        writer = build_store(tmp_path / "s", versions=6)
        reader = Store.open(tmp_path / "s", mode="ro")
        writer.orpheus.optimize("t", storage_threshold=4.0, tolerance=1.2)
        result = reader.refresh()
        assert "t" in result.migrated_cvds
        assert reader.orpheus.cvd("t").model.model_name == "partitioned_rlist"
        expected = writer.orpheus.checkout_rows("t", 6)
        assert reader.orpheus.checkout_rows("t", 6) == expected
        writer.close()
        reader.close()

    def test_refresh_after_checkpoint_at_readers_lsn_and_wal_regrowth(
        self, tmp_path
    ):
        """Regression: the writer checkpoints at exactly the reader's lsn
        (CURRENT's last_lsn not ahead, so no full reload) and the new log
        regrows past the reader's remembered byte offset.  The offset is
        meaningless in the replaced file — refresh must detect the swap
        and rescan from the head instead of silently applying nothing."""
        writer = Store.open(tmp_path / "s", checkpoint_interval=0)
        writer.orpheus.init(
            "t", [("k", "text"), ("v", "int")], rows=[("a", 1)], primary_key=("k",)
        )
        reader = Store.open(tmp_path / "s", mode="ro")
        assert reader.last_lsn == writer.last_lsn
        old_offset = reader._wal_offset
        writer.checkpoint()  # truncates the log at the reader's exact lsn
        for step in range(5):  # regrow well past the remembered offset
            work = f"g{step}"
            writer.orpheus.checkout("t", step + 1, table_name=work)
            writer.orpheus.run(f"INSERT INTO {work} (k, v) VALUES ('g{step}', 0)")
            writer.orpheus.commit(work, message=f"regrow {step}")
        assert writer.wal_size_bytes() > old_offset
        result = reader.refresh()
        assert result.applied == 5 and not result.full_reload
        assert reader.last_lsn == writer.last_lsn
        assert reader.orpheus.cvd("t").version_count == 6
        writer.close()
        reader.close()

    def test_refresh_survives_equal_size_wal_swap(self, tmp_path):
        """Regression: a checkpoint at the reader's exact lsn replaces the
        log; if the new file then regrows to *exactly* the remembered
        offset, the size/CRC heuristics see a clean EOF and would report
        "caught up" forever.  The CURRENT-name generation marker must
        catch the swap regardless of byte counts."""
        writer = Store.open(tmp_path / "s", checkpoint_interval=0)
        writer.orpheus.init(
            "t", [("k", "text"), ("v", "int")], rows=[("a", 1)], primary_key=("k",)
        )
        reader = Store.open(tmp_path / "s", mode="ro")
        writer.checkpoint()
        writer.orpheus.create_user("after-swap")  # lsn 2 in the new file
        # Pin the reader's offset to the new file's exact size — the
        # adversarial byte-coincidence the marker exists for.
        reader._wal_offset = writer.wal_size_bytes()
        result = reader.refresh()
        assert result.applied == 1 and not result.full_reload
        assert reader.last_lsn == writer.last_lsn
        assert "after-swap" in reader.orpheus.access._users
        writer.close()
        reader.close()

    def test_refresh_survives_writer_restart_cycles(self, tmp_path):
        build_store(tmp_path / "s").close()
        reader = Store.open(tmp_path / "s", mode="ro")
        for round_number in range(3):
            writer = Store.open(tmp_path / "s", checkpoint_interval=0)
            vid = writer.orpheus.cvd("t").version_count
            work = f"r{round_number}"
            writer.orpheus.checkout("t", vid, table_name=work)
            writer.orpheus.run(
                f"INSERT INTO {work} (k, v) VALUES ('r{round_number}', 0)"
            )
            writer.orpheus.commit(work, message=f"round {round_number}")
            writer.close()
            reader.refresh()
            assert reader.orpheus.cvd("t").version_count == vid + 1
        reader.close()

    def test_load_rejects_wal_compacted_past_the_snapshot(self, tmp_path):
        """Regression: a load whose CURRENT read raced a writer checkpoint
        can see an old snapshot next to a WAL compacted far beyond it.
        Applying the surviving tail would silently skip acknowledged
        records (and poison every lsn-keyed cache entry built on it);
        the load must raise instead, so the retry converges on the fresh
        CURRENT — or, with a genuinely stale pointer, fail loudly."""
        store = Store.open(tmp_path / "s", checkpoint_interval=0)
        store.orpheus.init(
            "t", [("k", "text"), ("v", "int")], rows=[("a", 1)], primary_key=("k",)
        )
        store.checkpoint()  # snapshot S1 at lsn 1
        stale_current = (tmp_path / "s" / "CURRENT").read_bytes()
        for step in range(2):  # lsns 2 and 3
            work = f"w{step}"
            store.orpheus.checkout("t", step + 1, table_name=work)
            store.orpheus.run(f"INSERT INTO {work} (k, v) VALUES ('x{step}', 0)")
            store.orpheus.commit(work, message=f"v{step + 2}")
        store.checkpoint()  # snapshot S2 at lsn 3, WAL compacted to empty
        store.orpheus.create_user("late")  # lsn 4: the only WAL record
        store.close()
        # Freeze the racy view: CURRENT back at S1/lsn 1, WAL holding lsn 4.
        (tmp_path / "s" / "CURRENT").write_bytes(stale_current)
        with pytest.raises(RecoveryError, match="jumps"):
            Store.open(tmp_path / "s", mode="ro")

    def test_refresh_is_read_only_api(self, tmp_path):
        store = build_store(tmp_path / "s")
        with pytest.raises(PersistenceError):
            store.refresh()
        store.close()


class TestLockLeakRegression:
    def test_failed_recovery_releases_the_lock(self, tmp_path):
        """A Store whose _recover raises must not keep the flock: the same
        process's retry used to fail with 'in use by another process'."""
        build_store(tmp_path / "s", checkpoint_interval=2).close()
        current = tmp_path / "s" / "CURRENT"
        good = current.read_bytes()
        current.write_text("not json at all")
        for _ in range(2):  # every retry sees the real error, not the lock
            with pytest.raises(RecoveryError):
                Store.open(tmp_path / "s")
        current.write_bytes(good)
        store = Store.open(tmp_path / "s")  # lock was never leaked
        assert store.orpheus.cvd("t").version_count == 3
        store.close()

    def test_failed_read_only_recovery_releases_the_lock(self, tmp_path):
        build_store(tmp_path / "s", checkpoint_interval=2).close()
        current = tmp_path / "s" / "CURRENT"
        good = current.read_bytes()
        current.write_text("{broken")
        with pytest.raises(RecoveryError):
            Store.open(tmp_path / "s", mode="ro")
        current.write_bytes(good)
        writer = Store.open(tmp_path / "s")
        writer.close()


class TestCurrentPointerCompat:
    def test_pre_lsn_current_pointer_still_opens_and_refreshes(self, tmp_path):
        """Stores checkpointed before the pointer carried last_lsn."""
        store = build_store(tmp_path / "s", checkpoint_interval=0)
        store.checkpoint()
        store.close()
        current = tmp_path / "s" / "CURRENT"
        info = json.loads(current.read_text())
        assert "last_lsn" in info
        del info["last_lsn"]
        current.write_text(json.dumps(info))

        reader = Store.open(tmp_path / "s", mode="ro")
        assert reader.orpheus.cvd("t").version_count == 3
        writer = Store.open(tmp_path / "s", checkpoint_interval=0)
        writer.orpheus.checkout("t", 3, table_name="w")
        writer.orpheus.run("INSERT INTO w (k, v) VALUES ('z', 1)")
        writer.orpheus.commit("w", message="v4")
        reader.refresh()
        assert reader.orpheus.cvd("t").version_count == 4
        writer.close()
        reader.close()
