"""Tests for the bipartite cost model (Section 4.1)."""

import pytest

from repro.errors import PartitionError
from repro.partition.bipartite import BipartiteGraph, Partitioning

# The paper's Figure 6 example: 4 versions over 7 records.
FIGURE6 = {
    1: frozenset({1, 2, 3}),
    2: frozenset({2, 3, 4}),
    3: frozenset({3, 5, 6, 7}),
    4: frozenset({2, 3, 4, 5, 6, 7}),
}


@pytest.fixture
def graph():
    return BipartiteGraph(FIGURE6)


class TestStructure:
    def test_counts(self, graph):
        assert graph.num_versions == 4
        assert graph.num_records == 7
        assert graph.num_edges == 3 + 3 + 4 + 6

    def test_records_of(self, graph):
        assert graph.records_of(1) == frozenset({1, 2, 3})
        with pytest.raises(PartitionError):
            graph.records_of(99)

    def test_empty_graph_rejected(self):
        with pytest.raises(PartitionError):
            BipartiteGraph({})


class TestPartitioning:
    def test_overlapping_groups_rejected(self):
        with pytest.raises(PartitionError):
            Partitioning.from_groups([{1, 2}, {2, 3}])

    def test_assignment(self):
        partitioning = Partitioning.from_groups([{1, 2}, {3, 4}])
        assert partitioning.assignment() == {1: 0, 2: 0, 3: 1, 4: 1}

    def test_empty_groups_dropped(self):
        partitioning = Partitioning.from_groups([{1}, set(), {2}])
        assert len(partitioning) == 2


class TestCosts:
    def test_figure6_partitioning(self, graph):
        """P1 = {v1, v2}, P2 = {v3, v4}: records r2 r3 r4 are duplicated."""
        partitioning = Partitioning.from_groups([{1, 2}, {3, 4}])
        assert graph.partition_records({1, 2}) == frozenset({1, 2, 3, 4})
        assert graph.partition_records({3, 4}) == frozenset({2, 3, 4, 5, 6, 7})
        assert graph.storage_cost(partitioning) == 4 + 6
        assert graph.checkout_cost(partitioning) == (2 * 4 + 2 * 6) / 4

    def test_observation1_per_version_minimizes_checkout(self, graph):
        per_version = Partitioning.per_version(graph.version_ids())
        assert graph.checkout_cost(per_version) == graph.min_checkout_cost

    def test_observation2_single_minimizes_storage(self, graph):
        single = Partitioning.single(graph.version_ids())
        assert graph.storage_cost(single) == graph.min_storage_cost
        assert graph.checkout_cost(single) == graph.num_records

    def test_checkout_cost_of_version(self, graph):
        partitioning = Partitioning.from_groups([{1, 2}, {3, 4}])
        assert graph.checkout_cost_of(1, partitioning) == 4
        assert graph.checkout_cost_of(4, partitioning) == 6

    def test_incomplete_partitioning_rejected(self, graph):
        with pytest.raises(PartitionError):
            graph.storage_cost(Partitioning.from_groups([{1, 2}]))

    def test_unknown_versions_rejected(self, graph):
        with pytest.raises(PartitionError):
            graph.storage_cost(Partitioning.from_groups([{1, 2, 3, 4, 99}]))


class TestWeightedCost:
    def test_uniform_frequencies_match_cavg(self, graph):
        partitioning = Partitioning.from_groups([{1, 2}, {3, 4}])
        weighted = graph.weighted_checkout_cost(
            partitioning, {vid: 1.0 for vid in FIGURE6}
        )
        assert weighted == graph.checkout_cost(partitioning)

    def test_skewed_frequencies_shift_cost(self, graph):
        partitioning = Partitioning.from_groups([{1, 2}, {3, 4}])
        heavy_small = graph.weighted_checkout_cost(partitioning, {1: 100})
        heavy_large = graph.weighted_checkout_cost(partitioning, {4: 100})
        assert heavy_small < graph.checkout_cost(partitioning) < heavy_large
