"""Assert-style wrappers over the chaos harness's invariant checks.

The four serving-tier invariants live in :mod:`repro.chaos.invariants`
as report-returning functions (the chaos driver and ``bench_htap.py``
consume the reports).  The unit suites want assertions with readable
failure text instead — these wrappers are that adapter, so
``test_persist_crash.py``, ``test_serve_prefork.py``, and
``test_chaos.py`` all exercise the *same* checks the chaos gate runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from repro.chaos.invariants import (
    InvariantReport,
    check_cache_coherence,
    check_fence_honesty,
    check_refresh_convergence,
    check_replay_determinism,
)


def _ok(report: InvariantReport) -> InvariantReport:
    assert report.ok, f"{report.name} violated: {report.details}"
    return report


def assert_replay_determinism(
    store_path: str | Path,
    rebuild: Callable[[object, dict], None],
    scratch_path: str | Path,
    sample: int | None = None,
) -> InvariantReport:
    """Recovered store ≡ from-scratch replay of its committed ops."""
    return _ok(
        check_replay_determinism(store_path, rebuild, scratch_path, sample=sample)
    )


def assert_refresh_convergence(
    refresh: Callable[[], object],
    current_lsn: Callable[[], int],
    target_lsn: int,
    timeout: float = 30.0,
) -> InvariantReport:
    """A reader must reach the durable tip within the deadline."""
    return _ok(
        check_refresh_convergence(refresh, current_lsn, target_lsn, timeout=timeout)
    )


def assert_cache_coherence(
    store_path: str | Path,
    cvd: str,
    served: Sequence[tuple[Sequence[int], dict]],
    sample: int | None = None,
) -> InvariantReport:
    """Served (cached) figures must match an uncached fresh-open checkout."""
    return _ok(check_cache_coherence(store_path, cvd, served, sample=sample))


def assert_fence_honesty(
    violations: int,
    probes: Sequence[tuple[int, dict]] = (),
) -> InvariantReport:
    """No response behind a client-observed lsn; impossible fences must be
    refused as ``stale_read``."""
    return _ok(check_fence_honesty(violations, probes))
