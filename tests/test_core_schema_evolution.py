"""Tests for single-pool schema evolution (Section 3.3, Figure 5)."""

from repro.core.schema_evolution import AttributeCatalog
from repro.storage.engine import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType


def make_catalog():
    db = Database()
    catalog = AttributeCatalog(db, "cvd")
    catalog.create_storage()
    return db, catalog


BASE = TableSchema(
    [
        Column("protein1", DataType.TEXT),
        Column("protein2", DataType.TEXT),
        Column("cooccurrence", DataType.INTEGER),
    ],
    ("protein1", "protein2"),
)


class TestAttributeCatalog:
    def test_register_schema_interns_columns(self):
        _db, catalog = make_catalog()
        ids = catalog.register_schema(BASE)
        assert ids == (1, 2, 3)
        # Re-registering is idempotent.
        assert catalog.register_schema(BASE) == ids

    def test_attribute_table_is_sql_visible(self):
        db, catalog = make_catalog()
        catalog.register_schema(BASE)
        rows = db.query(
            "SELECT attr_id, attr_name, data_type FROM cvd__attributes "
            "ORDER BY attr_id"
        )
        assert rows[2] == (3, "cooccurrence", "integer")


class TestReconcile:
    def test_noop_for_identical_schema(self):
        _db, catalog = make_catalog()
        catalog.register_schema(BASE)
        plan = catalog.reconcile(BASE, BASE)
        assert plan.is_noop
        assert plan.attribute_ids == (1, 2, 3)

    def test_type_change_creates_new_attribute(self):
        """Figure 5: cooccurrence int -> decimal gets attribute id a5."""
        _db, catalog = make_catalog()
        catalog.register_schema(BASE)
        staged = TableSchema(
            [
                Column("protein1", DataType.TEXT),
                Column("protein2", DataType.TEXT),
                Column("cooccurrence", DataType.DECIMAL),
            ]
        )
        plan = catalog.reconcile(BASE, staged)
        assert plan.widened_columns == [("cooccurrence", DataType.DECIMAL)]
        assert plan.attribute_ids == (1, 2, 4)  # fresh id for the decimal
        assert plan.new_schema.column("cooccurrence").dtype is DataType.DECIMAL

    def test_added_column(self):
        _db, catalog = make_catalog()
        catalog.register_schema(BASE)
        staged = TableSchema(
            list(BASE.columns) + [Column("coexpression", DataType.INTEGER)]
        )
        plan = catalog.reconcile(BASE, staged)
        assert [c.name for c in plan.added_columns] == ["coexpression"]
        assert plan.new_schema.column_names[-1] == "coexpression"

    def test_removed_column_is_metadata_only(self):
        _db, catalog = make_catalog()
        catalog.register_schema(BASE)
        staged = TableSchema(
            [Column("protein1", DataType.TEXT), Column("protein2", DataType.TEXT)]
        )
        plan = catalog.reconcile(BASE, staged)
        assert plan.removed_columns == ["cooccurrence"]
        # The physical column stays (single-pool keeps older versions whole).
        assert "cooccurrence" in plan.new_schema
        assert plan.attribute_ids == (1, 2)

    def test_narrowing_is_not_applied(self):
        """decimal -> int stays decimal: widening is one-way."""
        _db, catalog = make_catalog()
        wide = TableSchema([Column("x", DataType.DECIMAL)])
        catalog.register_schema(wide)
        staged = TableSchema([Column("x", DataType.INTEGER)])
        plan = catalog.reconcile(wide, staged)
        assert plan.widened_columns == []
        assert plan.new_schema.column("x").dtype is DataType.DECIMAL


class TestEndToEndEvolution:
    def test_commit_with_new_column(self, orpheus):
        orpheus.init("e", [("a", "int"), ("b", "int")], rows=[(1, 2)])
        orpheus.checkout("e", 1, table_name="w")
        orpheus.db.table("w").alter_add_column(Column("c", DataType.INTEGER), default=7)
        vid = orpheus.commit("w", message="added a column")
        cvd = orpheus.cvd("e")
        assert cvd.data_schema.column_names == ["a", "b", "c"]
        rows = cvd.checkout_rows([vid])
        assert rows[0][1:] == (1, 2, 7)
        # The original version reads back NULL for the new column.
        old = cvd.checkout_rows([1])
        assert old[0][1:] == (1, 2, None)
        # Metadata records different attribute sets per version.
        assert cvd.version(1).attribute_ids != cvd.version(vid).attribute_ids

    def test_commit_with_widened_type(self, orpheus):
        orpheus.init("e", [("a", "int"), ("score", "int")], rows=[(1, 10)])
        orpheus.checkout("e", 1, table_name="w")
        orpheus.db.table("w").alter_column_type("score", DataType.DECIMAL)
        orpheus.db.execute("UPDATE w SET score = 10.5")
        vid = orpheus.commit("w", message="decimal scores")
        cvd = orpheus.cvd("e")
        assert cvd.data_schema.column("score").dtype is DataType.DECIMAL
        assert cvd.checkout_rows([vid])[0][2] == 10.5

    def test_merge_includes_attributes_of_both_parents(self, orpheus):
        """Figure 5's v4: merged versions carry the union of attributes."""
        orpheus.init("e", [("a", "int")], rows=[(1,)])
        orpheus.checkout("e", 1, table_name="w2")
        orpheus.db.table("w2").alter_add_column(Column("b", DataType.INTEGER))
        v2 = orpheus.commit("w2")
        orpheus.checkout("e", 1, table_name="w3")
        orpheus.db.table("w3").alter_add_column(Column("c", DataType.INTEGER))
        v3 = orpheus.commit("w3")
        orpheus.checkout("e", [v2, v3], table_name="w4")
        v4 = orpheus.commit("w4")
        cvd = orpheus.cvd("e")
        assert set(cvd.data_schema.column_names) >= {"a", "b", "c"}
        assert len(cvd.member_rids(v4)) == 1
