"""The chaos harness itself: traces, crash injection, invariants, driver.

Fast deterministic checks of the pieces (seeded plan generation, the
``ORPHEUS_CRASH_POINTS`` kill switch, each invariant's failure
detection) plus one real end-to-end scenario: a writer process killed
-9 at a journaled WAL offset and a prefork worker SIGKILLed mid-trace,
with all four invariants checked — the same code path CI's chaos gate
runs at 3 seeds through ``benchmarks/bench_htap.py --smoke``.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chaos import (
    FaultPlan,
    TraceConfig,
    build_reader_schedule,
    build_writer_plan,
    check_cache_coherence,
    check_fence_honesty,
    check_refresh_convergence,
    plan_document,
    replay_plan,
    run_chaos,
)
from repro.chaos.trace import apply_writer_op
from repro.persist import Store
from repro.persist.injection import ENV_VAR, armed_points, disarm, parse_spec
from repro.serve.server import rows_checksum

from invariants import assert_replay_determinism

# Forked pools and writer subprocesses: generous per-module override of
# the suite-wide default (wired in conftest.py when pytest-timeout is
# installed; a no-op marker otherwise).
pytestmark = pytest.mark.timeout(300)

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestTraceGeneration:
    def test_same_seed_same_plan_different_seed_different_plan(self):
        config = TraceConfig(seed=11, versions=10, reader_ops=24)
        assert plan_document(config) == plan_document(config)
        other = TraceConfig(seed=12, versions=10, reader_ops=24)
        assert plan_document(config) != plan_document(other)

    def test_writer_plan_walks_the_dag_with_resume_cursors(self):
        config = TraceConfig(seed=23, versions=30, evolutions=2, checkpoints=3)
        ops, meta = build_writer_plan(config)
        assert ops[0] == {"kind": "init", "versions_after": 1}
        commits = [op for op in ops if op["kind"] == "commit"]
        assert [op["vid"] for op in commits] == list(range(2, 31))
        # versions_after is the resume cursor: never decreasing, and a
        # checkpoint inherits the version count of the commit before it.
        cursor = 0
        for op in ops:
            assert op["versions_after"] >= cursor
            cursor = op["versions_after"]
        assert meta["commits"] == 29
        assert meta["evolutions"] == 2
        assert meta["checkpoints"] == 3
        assert meta["branches"] + meta["merges"] > 0
        # Schema evolution threads through every later commit's insert.
        evolved = [op for op in commits if op["evolve"]]
        assert len(evolved) == 2
        assert evolved[0]["evolve"] in commits[-1]["insert_columns"]

    def test_reader_schedule_ramps_and_mixes(self):
        config = TraceConfig(seed=47, versions=12, reader_ops=40)
        ops, meta = build_reader_schedule(config)
        assert len(ops) == 40
        needs = [op["need_versions"] for op in ops]
        assert needs == sorted(needs)  # the ramp gating determinism
        assert needs[-1] == 12
        assert meta["checkouts"] + meta["queries"] + meta["refreshes"] == 40
        assert meta["checkouts"] > 0 and meta["queries"] > 0
        # Zipf-by-recency: picks skew toward the newest available tip.
        picks = [
            (op["vid"], op["need_versions"])
            for op in ops if op["kind"] == "query"
        ] + [
            (vid, op["need_versions"])
            for op in ops if op["kind"] == "checkout" for vid in op["vids"]
        ]
        near_tip = sum(1 for vid, avail in picks if vid >= avail - 2)
        assert near_tip >= len(picks) // 2


class TestCrashInjection:
    def test_parse_spec(self):
        assert parse_spec("wal.after_append:5") == {"wal.after_append": 5}
        assert parse_spec(" a:1 , b.c:2 ,") == {"a": 1, "b.c": 2}
        for bad in ("noseparator", "name:", ":3", "name:x", "name:0"):
            with pytest.raises(ValueError):
                parse_spec(bad)

    def test_arm_disarm(self):
        from repro.persist import injection

        injection.arm("point.a:2")
        try:
            assert armed_points() == {"point.a": 2}
        finally:
            disarm()
        assert armed_points() == {}

    def _launch_writer(self, base: Path, crash_spec: str | None):
        env = {"PYTHONPATH": SRC, "PYTHONHASHSEED": "0"}
        if crash_spec:
            env[ENV_VAR] = crash_spec
        return subprocess.run(
            [
                sys.executable, "-m", "repro.chaos",
                "--store", str(base / "store"),
                "--plan", str(base / "plan.json"),
                "--progress", str(base / "progress.jsonl"),
            ],
            env=env,
            capture_output=True,
            text=True,
        )

    def test_writer_killed_at_wal_offset_recovers_and_resumes(self, tmp_path):
        """The full crash lifecycle the chaos driver leans on: a writer
        SIGKILLed after an exact WAL append leaves a store whose recovery
        digest-equals a from-scratch replay of the acknowledged prefix,
        and a relaunched writer resumes from that state to the end."""
        config = TraceConfig(
            seed=11, root_rows=60, versions=6, churn=8,
            checkpoints=0, evolutions=1,
        )
        doc = plan_document(config)
        tmp_path.joinpath("plan.json").write_text(json.dumps(doc))

        killed = self._launch_writer(tmp_path, "wal.after_append:5")
        assert killed.returncode == -signal.SIGKILL, killed.stderr

        with Store.open(tmp_path / "store", mode="ro") as store:
            recovered = store.orpheus.cvd(config.cvd).version_count
        assert 1 <= recovered < config.versions

        report = assert_replay_determinism(
            tmp_path / "store",
            lambda orpheus, versions: replay_plan(
                orpheus, doc["writer_ops"], config, versions[config.cvd]
            ),
            tmp_path / "scratch",
        )
        assert report.figures["versions"][config.cvd] == recovered

        resumed = self._launch_writer(tmp_path, None)
        assert resumed.returncode == 0, resumed.stderr
        with Store.open(tmp_path / "store", mode="ro") as store:
            assert store.orpheus.cvd(config.cvd).version_count == config.versions

    def test_kill_offset_is_deterministic(self, tmp_path):
        """Same plan + same crash point = same durable state, run twice —
        the property that lets a CI failure bundle replay exactly."""
        config = TraceConfig(seed=23, root_rows=40, versions=5, churn=6,
                             checkpoints=0, evolutions=0)
        doc = plan_document(config)
        counts = []
        for attempt in ("a", "b"):
            base = tmp_path / attempt
            base.mkdir()
            base.joinpath("plan.json").write_text(json.dumps(doc))
            killed = self._launch_writer(base, "wal.after_append:4")
            assert killed.returncode == -signal.SIGKILL, killed.stderr
            with Store.open(base / "store", mode="ro") as store:
                counts.append(store.orpheus.cvd(config.cvd).version_count)
        assert counts[0] == counts[1]


class TestInvariantChecks:
    @pytest.fixture
    def chaos_store(self, tmp_path):
        config = TraceConfig(seed=11, root_rows=50, versions=4, churn=6,
                             checkpoints=0, evolutions=0)
        ops, _meta = build_writer_plan(config)
        with Store.open(tmp_path / "s", checkpoint_interval=0) as store:
            for op in ops:
                apply_writer_op(store.orpheus, op, config)
        return tmp_path / "s", config

    def test_cache_coherence_passes_on_true_figures(self, chaos_store):
        path, config = chaos_store
        with Store.open(path, mode="ro") as store:
            rows = store.orpheus.checkout_rows(config.cvd, [4])
        served = [([4], {"count": len(rows), "checksum": rows_checksum(rows)})]
        assert check_cache_coherence(path, config.cvd, served).ok

    def test_cache_coherence_detects_a_lying_cache(self, chaos_store):
        path, config = chaos_store
        with Store.open(path, mode="ro") as store:
            rows = store.orpheus.checkout_rows(config.cvd, [4])
        served = [
            ([4], {"count": len(rows), "checksum": rows_checksum(rows) ^ 1}),
            ([3], {"count": 99999, "checksum": 0}),
        ]
        report = check_cache_coherence(path, config.cvd, served)
        assert not report.ok
        assert "[4]" in report.details and "[3]" in report.details

    def test_refresh_convergence_counts_refreshes(self):
        lsn = [0]

        def refresh():
            lsn[0] += 5

        report = check_refresh_convergence(refresh, lambda: lsn[0], 12)
        assert report.ok and report.figures["refreshes"] == 3

    def test_refresh_convergence_reports_a_stuck_reader(self):
        report = check_refresh_convergence(
            lambda: None, lambda: 7, 100, timeout=0.2, interval=0.01
        )
        assert not report.ok
        assert "stuck at lsn 7" in report.details

    def test_fence_honesty(self):
        refused = {"ok": False, "code": "stale_read", "error": "..."}
        assert check_fence_honesty(0, [(1000, refused)]).ok
        assert not check_fence_honesty(3).ok
        answered = {"ok": True, "count": 5, "lsn": 4}
        report = check_fence_honesty(0, [(1000, answered)])
        assert not report.ok
        assert "not refused as stale_read" in report.details


class TestEndToEnd:
    def test_mini_chaos_run_survives_both_fault_kinds(self, tmp_path):
        """One small but complete scenario: real writer process killed -9
        mid-trace, one prefork worker SIGKILLed under live traffic, all
        four invariants checked and passing, counters deterministic."""
        config = TraceConfig(
            seed=11, root_rows=120, versions=6, churn=12,
            reader_ops=12, checkpoints=1, evolutions=1,
        )
        faults = FaultPlan(writer_kills=(3,), worker_kills=1, pace_ms=1.0)
        report = run_chaos(config, faults, workers=2, base_dir=tmp_path / "run")
        assert report["ok"], (report["errors"], report["invariants"])
        counters = report["counters"]
        assert counters["writer_kills"] == 1
        assert counters["worker_kills"] == 1
        assert counters["fence_violations"] == 0
        assert counters["reader_errors"] == 0
        assert counters["invariants_checked"] >= 4
        assert counters["invariants_passed"] == counters["invariants_checked"]
        assert counters["final_versions"] == config.versions
        names = {entry["name"] for entry in report["invariants"]}
        assert names == {
            "replay_determinism", "refresh_convergence",
            "cache_coherence", "fence_honesty",
        }
        # Deterministic figures: a second identical run must agree on
        # the logical tip (wall clock and pids of course differ).
        rerun = run_chaos(config, faults, workers=2, base_dir=tmp_path / "rerun")
        assert rerun["ok"], (rerun["errors"], rerun["invariants"])
        assert rerun["counters"]["tip_checksum"] == counters["tip_checksum"]
        assert rerun["counters"]["final_lsn"] == counters["final_lsn"]

    def test_failed_run_writes_a_repro_bundle(self, tmp_path, monkeypatch):
        """A failing scenario must package plan + journal + store for
        offline replay (CI uploads these as artifacts)."""
        config = TraceConfig(seed=5, root_rows=40, versions=3, churn=4,
                             reader_ops=4, checkpoints=0, evolutions=0)
        # An impossible fault plan: the run cannot observe this writer
        # kill (vid 99 never commits), so ok=False without any real
        # breakage — the cheapest honest failure.
        faults = FaultPlan(writer_kills=(99,), worker_kills=0, pace_ms=0.0)
        report = run_chaos(
            config, faults, workers=1,
            base_dir=tmp_path / "run", failure_dir=tmp_path / "failures",
        )
        assert not report["ok"]
        bundle = Path(report["bundle"])
        assert bundle.exists() and bundle.name == "chaos-seed5.tar.gz"
