"""Snapshot -> recover equality for every data model, plus store behaviour.

The protein history of Figure 1 (edit, delete, merge) is driven through a
:class:`repro.persist.Store` for each of the six data models; after a
checkpoint and a cold reopen, every materialized version must be
byte-identical and the middleware metadata (graph, clock, users, staging)
must survive.
"""

import pytest

from repro.core.datamodels import MODEL_REGISTRY
from repro.errors import PersistenceError
from repro.persist import Store

ALL_MODELS = sorted(MODEL_REGISTRY)

SCHEMA = [
    ("protein1", "text"),
    ("protein2", "text"),
    ("neighborhood", "int"),
    ("cooccurrence", "int"),
    ("coexpression", "int"),
]
ROWS = [
    ("ENSP273047", "ENSP261890", 0, 53, 0),
    ("ENSP273047", "ENSP235932", 0, 87, 0),
    ("ENSP300413", "ENSP274242", 426, 0, 164),
]


def build_history(orpheus, model):
    """Figure 1's four versions: root, edit+insert, delete, merge."""
    orpheus.init(
        "proteins",
        SCHEMA,
        rows=ROWS,
        model=model,
        primary_key=("protein1", "protein2"),
    )
    orpheus.checkout("proteins", 1, table_name="w2")
    orpheus.run(
        "UPDATE w2 SET coexpression = 83 "
        "WHERE protein1 = 'ENSP273047' AND protein2 = 'ENSP261890'"
    )
    orpheus.run("INSERT INTO w2 VALUES (NULL, 'ENSP309334', 'ENSP346022', 0, 227, 975)")
    orpheus.commit("w2", message="rescore + discover")
    orpheus.checkout("proteins", 1, table_name="w3")
    orpheus.run("DELETE FROM w3 WHERE protein1 = 'ENSP300413'")
    orpheus.commit("w3", message="prune")
    orpheus.checkout("proteins", [2, 3], table_name="w4")
    orpheus.commit("w4", message="merge")


def materialize_all(orpheus, name="proteins"):
    cvd = orpheus.cvd(name)
    return {vid: cvd.checkout_rows([vid]) for vid in cvd.graph.version_ids()}


@pytest.mark.parametrize("model", ALL_MODELS)
class TestSnapshotRecoverEquality:
    def test_all_versions_byte_identical(self, tmp_path, model):
        store = Store.open(tmp_path / "store")
        build_history(store.orpheus, model)
        expected = materialize_all(store.orpheus)
        store.checkpoint()
        store.close()

        reopened = Store.open(tmp_path / "store")
        assert materialize_all(reopened.orpheus) == expected
        # Recovery must come from the snapshot: the WAL was compacted.
        assert reopened.wal_size_bytes() == 0

    def test_metadata_survives(self, tmp_path, model):
        store = Store.open(tmp_path / "store")
        orpheus = store.orpheus
        orpheus.create_user("alice")
        orpheus.config("alice")
        build_history(orpheus, model)
        expected_log = orpheus.version_log("proteins")
        expected_clock = orpheus._clock
        expected_counts = orpheus.checkout_frequencies("proteins")
        store.checkpoint()
        store.close()

        orpheus = Store.open(tmp_path / "store").orpheus
        assert orpheus.whoami() == "alice"
        assert orpheus.version_log("proteins") == expected_log
        assert orpheus._clock == expected_clock
        assert orpheus.checkout_frequencies("proteins") == expected_counts
        assert orpheus.cvd("proteins").model.model_name == model

    def test_commit_keeps_working_after_reopen(self, tmp_path, model):
        store = Store.open(tmp_path / "store")
        build_history(store.orpheus, model)
        store.checkpoint()
        store.close()

        store = Store.open(tmp_path / "store")
        orpheus = store.orpheus
        orpheus.checkout("proteins", 4, table_name="w5")
        orpheus.run("DELETE FROM w5 WHERE protein1 = 'ENSP309334'")
        vid = orpheus.commit("w5", message="post-recovery")
        assert vid == 5
        assert orpheus.cvd("proteins").version(5).num_records == 3

    def test_staged_checkout_survives_checkpoint(self, tmp_path, model):
        store = Store.open(tmp_path / "store")
        orpheus = store.orpheus
        build_history(orpheus, model)
        orpheus.checkout("proteins", 2, table_name="work")
        orpheus.run("UPDATE work SET neighborhood = 7")
        staged_rows = sorted(orpheus.db.table("work").rows())
        store.checkpoint()
        store.close()

        orpheus = Store.open(tmp_path / "store").orpheus
        assert orpheus.provenance.staged_names() == ["work"]
        assert sorted(orpheus.db.table("work").rows()) == staged_rows
        vid = orpheus.commit("work", message="resumed staging")
        assert orpheus.cvd("proteins").version(vid).message == "resumed staging"


class TestStoreBehaviour:
    def test_schema_evolution_round_trip(self, tmp_path):
        store = Store.open(tmp_path / "store")
        orpheus = store.orpheus
        orpheus.init("t", [("k", "text"), ("v", "int")], rows=[("a", 1)])
        orpheus.checkout("t", 1, table_name="w")
        orpheus.run("ALTER TABLE w ADD COLUMN extra text DEFAULT 'x'")
        orpheus.commit("w", message="wider")
        expected = materialize_all(orpheus, "t")
        schema = [c.name for c in orpheus.cvd("t").data_schema.columns]
        store.checkpoint()
        store.close()

        orpheus = Store.open(tmp_path / "store").orpheus
        assert [c.name for c in orpheus.cvd("t").data_schema.columns] == schema
        assert materialize_all(orpheus, "t") == expected

    def test_auto_checkpoint_compacts_wal(self, tmp_path):
        store = Store.open(tmp_path / "store", checkpoint_interval=2)
        orpheus = store.orpheus
        orpheus.create_user("a")
        assert store.wal_size_bytes() > 0
        orpheus.create_user("b")  # second record triggers the checkpoint
        assert store.wal_size_bytes() == 0
        assert (store.path / "CURRENT").exists()
        store.close()
        reopened = Store.open(tmp_path / "store")
        assert reopened.orpheus.access.has_user("a")
        assert reopened.orpheus.access.has_user("b")

    def test_wal_byte_threshold_triggers_checkpoint(self, tmp_path):
        """One big record (a bulk init) must not be re-replayed on every
        open until the record-count interval fills up."""
        store = Store.open(
            tmp_path / "store", checkpoint_interval=0, checkpoint_bytes=256
        )
        store.orpheus.init("big", [("v", "int")], rows=[(i,) for i in range(100)])
        # The init record alone crossed the byte threshold.
        assert (store.path / "CURRENT").exists()
        assert store.wal_size_bytes() == 0
        store.close()

    def test_large_replayed_tail_checkpoints_at_open(self, tmp_path):
        store = Store.open(
            tmp_path / "store", checkpoint_interval=0, checkpoint_bytes=0
        )
        store.orpheus.init("big", [("v", "int")], rows=[(i,) for i in range(100)])
        store.close(sync=False)
        assert not (tmp_path / "store" / "CURRENT").exists()

        reopened = Store.open(
            tmp_path / "store", checkpoint_interval=0, checkpoint_bytes=256
        )
        # Recovery replayed a big tail and immediately compacted it.
        assert (reopened.path / "CURRENT").exists()
        assert reopened.wal_size_bytes() == 0
        assert reopened.orpheus.cvd("big").version_count == 1
        reopened.close()

    def test_checkpoint_prunes_old_snapshots(self, tmp_path):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        for index in range(5):
            store.orpheus.create_user(f"user{index}")
            store.checkpoint()
        snapshots = sorted(entry.name for entry in (store.path / "snapshots").iterdir())
        assert len(snapshots) == 2  # retention: active + one predecessor
        store.close()

    def test_drop_round_trip(self, tmp_path):
        store = Store.open(tmp_path / "store")
        orpheus = store.orpheus
        orpheus.init("gone", [("x", "int")], rows=[(1,)])
        orpheus.init("kept", [("x", "int")], rows=[(2,)])
        orpheus.drop("gone")
        store.close()
        orpheus = Store.open(tmp_path / "store").orpheus
        assert orpheus.ls() == ["kept"]

    def test_durable_sql_round_trip(self, tmp_path):
        """DML against a non-staged table is journaled and replayed."""
        store = Store.open(tmp_path / "store")
        orpheus = store.orpheus
        orpheus.run("CREATE TABLE notes (id INT, body TEXT)")
        orpheus.run("INSERT INTO notes VALUES (1, 'hello')")
        store.close(sync=False)  # no checkpoint: force WAL-only recovery
        orpheus = Store.open(tmp_path / "store").orpheus
        assert orpheus.run("SELECT body FROM notes").scalar() == "hello"

    def test_restore_covers_every_constructor_attribute(self, tmp_path):
        """Snapshot restore rebuilds objects via __new__, mirroring their
        constructors field by field; this guards the mirror against new
        attributes being added to __init__ but forgotten in restore."""
        from repro.core.orpheus import OrpheusDB

        store = Store.open(tmp_path / "store")
        build_history(store.orpheus, "split_by_rlist")
        store.checkpoint()
        store.close()
        restored = Store.open(tmp_path / "store").orpheus

        fresh = OrpheusDB()
        assert set(vars(fresh)) <= set(vars(restored))
        fresh.init("proteins", SCHEMA, rows=ROWS)
        fresh_cvd = fresh.cvd("proteins")
        restored_cvd = restored.cvd("proteins")
        assert set(vars(fresh_cvd)) <= set(vars(restored_cvd))

    def test_open_on_legacy_pickle_file_raises(self, tmp_path):
        legacy = tmp_path / "state.orpheusdb"
        legacy.write_bytes(b"not a directory")
        with pytest.raises(PersistenceError):
            Store.open(legacy)

    def test_checkpoint_does_not_charge_io_stats(self, tmp_path):
        """Snapshots must not inflate the records-touched counters the
        paper's cost-model benchmarks observe."""
        store = Store.open(tmp_path / "store")
        store.orpheus.init("t", [("v", "int")], rows=[(i,) for i in range(50)])
        store.orpheus.db.reset_stats()
        store.checkpoint()
        assert store.orpheus.db.stats.records_scanned == 0
        store.close()

    def test_failed_mutating_script_forces_barrier_on_next_op(self, tmp_path):
        """A script failing after partial effects leaves unjournaled state;
        the next journaled op must checkpoint so recovery never replays on
        top of a diverged base (previously this could brick Store.open)."""
        from repro.errors import ReproError

        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        orpheus = store.orpheus
        orpheus.run("CREATE TABLE a (x INT)")
        with pytest.raises(ReproError):
            # First DROP applies, second fails: partial, unjournaled.
            orpheus.run("DROP TABLE a; DROP TABLE nope")
        assert not orpheus.db.has_table("a")
        orpheus.run("CREATE TABLE a (x INT)")  # journaled, barrier-flagged
        assert (store.path / "CURRENT").exists()  # barrier checkpointed
        crash_wal = store.wal_size_bytes()
        assert crash_wal == 0  # compacted: nothing left to replay badly
        store.close(sync=False)

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        assert recovered.orpheus.db.has_table("a")
        recovered.close()

    def test_failed_journal_append_forces_barrier_on_next_op(self):
        """An op that applied in memory but whose append raised (disk
        full) must make the next journaled record a barrier, or recovery
        would replay it against a state missing the lost op."""
        from repro.core.orpheus import OrpheusDB

        class FailOnce:
            def __init__(self):
                self.fail = True
                self.records = []

            def append(self, record):
                if self.fail:
                    self.fail = False
                    raise OSError("disk full")
                self.records.append(record)

        orpheus = OrpheusDB()
        journal = FailOnce()
        orpheus.attach_journal(journal)
        with pytest.raises(OSError):
            orpheus.init("x", [("v", "int")], rows=[(1,)])
        orpheus.create_user("next")
        assert journal.records[0]["barrier"] is True

    def test_concurrent_open_is_refused(self, tmp_path):
        """A second opener would append duplicate lsns and lose them at
        the first opener's compaction — it must fail fast instead."""
        first = Store.open(tmp_path / "store")
        first.orpheus.create_user("held")
        with pytest.raises(PersistenceError, match="in use"):
            Store.open(tmp_path / "store")
        first.close()
        second = Store.open(tmp_path / "store")  # released on close
        assert second.orpheus.access.has_user("held")
        second.close()

    def test_optimize_round_trip(self, tmp_path):
        store = Store.open(tmp_path / "store")
        orpheus = store.orpheus
        build_history(orpheus, "split_by_rlist")
        expected = materialize_all(orpheus)
        orpheus.optimize("proteins")
        assert materialize_all(orpheus) == expected
        store.close(sync=False)  # replay the optimize op from the WAL
        orpheus = Store.open(tmp_path / "store").orpheus
        assert orpheus.cvd("proteins").model.model_name == "partitioned_rlist"
        assert materialize_all(orpheus) == expected
