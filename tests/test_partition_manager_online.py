"""Tests for physical partitioning, online maintenance, and migration."""

import pytest

from repro.partition.bipartite import BipartiteGraph, Partitioning
from repro.partition.migration import plan_intelligent, plan_naive
from repro.partition.online import PartitionOptimizer
from repro.storage.engine import Database
from repro.workloads import load_workload


@pytest.fixture
def optimized(sci_tiny):
    db = Database()
    cvd = load_workload(db, "sci", sci_tiny)
    optimizer = PartitionOptimizer(cvd, storage_multiple=2.0, tolerance=1.5)
    optimizer.run_full_partitioning()
    return cvd, optimizer


class TestPhysicalPartitioning:
    def test_checkout_equivalence_after_partitioning(self, sci_tiny):
        """Partitioned storage must return exactly the same versions."""
        db = Database()
        cvd = load_workload(db, "sci", sci_tiny)
        expected = {
            vid: sorted(cvd.model.fetch_version(vid))
            for vid in cvd.graph.version_ids()
        }
        PartitionOptimizer(cvd, storage_multiple=2.0).run_full_partitioning()
        for vid, rows in expected.items():
            assert sorted(cvd.model.fetch_version(vid)) == rows

    def test_old_monolithic_tables_dropped(self, optimized):
        cvd, _opt = optimized
        assert not cvd.db.has_table("sci__data")
        assert not cvd.db.has_table("sci__versions")

    def test_storage_within_budget(self, optimized):
        cvd, optimizer = optimized
        assert optimizer.current_storage_cost <= 2.0 * cvd.record_count

    def test_checkout_touches_only_one_partition(self, optimized):
        cvd, optimizer = optimized
        model = cvd.model
        vid = cvd.graph.leaves()[0]
        partition = model.partition_states()[
            [s.index for s in model.partition_states()].index(
                model.partition_of(vid)
            )
        ]
        cvd.db.reset_stats()
        model.fetch_version(vid)
        # Scanned records bounded by the partition, not the whole CVD.
        assert cvd.db.stats.records_scanned <= partition.num_records + len(
            cvd.member_rids(vid)
        ) + 5

    def test_checkout_cost_reduced_vs_unpartitioned(self, sci_tiny):
        db = Database()
        cvd = load_workload(db, "sci", sci_tiny)
        vid = cvd.graph.leaves()[0]
        db.reset_stats()
        cvd.model.fetch_version(vid)
        before = db.stats.records_scanned
        PartitionOptimizer(cvd, storage_multiple=2.0).run_full_partitioning()
        db.reset_stats()
        cvd.model.fetch_version(vid)
        after = db.stats.records_scanned
        assert after < before

    def test_translator_works_on_partitioned_model(self, optimized):
        cvd, _opt = optimized
        from repro.core.orpheus import OrpheusDB

        # Wire a facade around the existing db/cvd for translation.
        orpheus = OrpheusDB(cvd.db)
        orpheus._cvds["sci"] = cvd
        count = orpheus.run("SELECT count(*) FROM VERSION 1 OF CVD sci").scalar()
        assert count == len(cvd.member_rids(1))
        total = orpheus.run(
            "SELECT count(*) FROM ALL VERSIONS OF CVD sci AS av"
        ).scalar()
        assert total == cvd.bipartite_edge_count


class TestOnlineMaintenance:
    def test_heavy_overlap_joins_parent_partition(self, optimized):
        """w(vi, vj) > delta* |R|: vi joins vj's partition (Section 4.3)."""
        cvd, optimizer = optimized
        optimizer.delta_star = 0.0  # any positive overlap exceeds the bar
        parent = cvd.graph.leaves()[0]
        members = sorted(cvd.member_rids(parent))
        vid = cvd.ingest_version((parent,), members, {}, "same content")
        assert cvd.model.partition_of(vid) == cvd.model.partition_of(parent)

    def test_exhausted_budget_joins_parent_partition(self, sci_tiny):
        """S >= gamma: even light-overlap commits pile into the parent."""
        db = Database()
        cvd = load_workload(db, "sci", sci_tiny)
        optimizer = PartitionOptimizer(cvd, storage_multiple=1.0)
        optimizer.run_full_partitioning()
        parent = cvd.graph.leaves()[0]
        keep = sorted(cvd.member_rids(parent))[:2]  # tiny overlap
        vid = cvd.ingest_version((parent,), keep, {}, "light overlap")
        assert cvd.model.partition_of(vid) == cvd.model.partition_of(parent)

    def test_disjoint_commit_opens_new_partition(self, optimized):
        cvd, optimizer = optimized
        parent = cvd.graph.leaves()[0]
        new_records = {cvd.allocate_rid(): tuple(range(10)) for _ in range(20)}
        vid = cvd.ingest_version((parent,), list(new_records), new_records, "disjoint")
        assert cvd.model.partition_of(vid) != cvd.model.partition_of(parent)

    def test_after_commit_records_trace(self, optimized):
        cvd, optimizer = optimized
        parent = cvd.graph.leaves()[0]
        members = sorted(cvd.member_rids(parent))
        cvd.ingest_version((parent,), members, {}, "trace me")
        sample = optimizer.after_commit()
        assert sample.version_count == cvd.version_count
        assert optimizer.trace.samples[-1] is sample

    def test_tolerance_triggers_migration(self, sci_tiny):
        db = Database()
        cvd = load_workload(db, "sci", sci_tiny)
        optimizer = PartitionOptimizer(cvd, storage_multiple=2.0, tolerance=1.05)
        best = optimizer.run_full_partitioning()
        # Degrade the layout to a single partition: Cavg jumps to |R|,
        # crossing mu * C*avg, so the next commit must fire a migration.
        single = Partitioning.single(cvd.graph.version_ids())
        optimizer.migrate(single)
        migrations_before = len(optimizer.trace.migrations)
        assert optimizer.current_checkout_cost > 1.05 * best.checkout_cost
        parent = cvd.graph.leaves()[0]
        members = sorted(cvd.member_rids(parent))
        cvd.ingest_version((parent,), members, {}, "post-degradation")
        optimizer.after_commit()
        assert len(optimizer.trace.migrations) == migrations_before + 1
        # The migration restored a near-optimal layout.
        sample = optimizer.trace.samples[-1]
        assert optimizer.current_checkout_cost <= 1.05 * sample.best_cavg

    def test_invalid_tolerance_rejected(self, sci_cvd):
        with pytest.raises(Exception):
            PartitionOptimizer(sci_cvd, tolerance=0.5)


class TestMigrationPlanning:
    def test_intelligent_reuses_similar_partition(self):
        members = {
            1: frozenset({1, 2, 3}),
            2: frozenset({2, 3, 4}),
            3: frozenset({10, 11}),
        }
        old = [{1, 2, 3, 4}, {10, 11}]
        new = Partitioning.from_groups([{1, 2}, {3}])
        plan = plan_intelligent(old, new, members)
        assert plan.reuse == {0: 0, 1: 1}
        assert plan.modifications == 0  # identical rid sets

    def test_intelligent_builds_from_scratch_when_cheaper(self):
        members = {1: frozenset({1}), 2: frozenset(range(100, 200))}
        old = [set(range(1000, 1200))]  # nothing in common
        new = Partitioning.from_groups([{1}, {2}])
        plan = plan_intelligent(old, new, members)
        # Editing a 200-record partition into a 1-record one costs 201;
        # scratch costs 1.
        assert 0 not in plan.reuse
        assert plan.modifications <= 101

    def test_naive_counts_everything(self):
        members = {1: frozenset({1, 2}), 2: frozenset({2, 3})}
        new = Partitioning.from_groups([{1}, {2}])
        plan = plan_naive(new, members)
        assert plan.modifications == 4
        assert plan.reuse == {}

    def test_intelligent_never_costlier_than_naive(self, sci_cvd):
        bip = BipartiteGraph.from_cvd(sci_cvd)
        members = sci_cvd.membership
        vids = sorted(members)
        half = len(vids) // 2
        old_groups = [set(vids[:half]), set(vids[half:])]
        old_rids = [bip.partition_records(g) for g in old_groups]
        new = Partitioning.from_groups([set(vids[: half + 3]), set(vids[half + 3 :])])
        smart = plan_intelligent([set(r) for r in old_rids], new, members)
        naive = plan_naive(new, members)
        assert smart.modifications <= naive.modifications


class TestMigrationExecution:
    def test_migrate_preserves_version_contents(self, optimized):
        cvd, optimizer = optimized
        expected = {
            vid: sorted(cvd.model.fetch_version(vid))
            for vid in cvd.graph.version_ids()
        }
        # Force a different layout: single partition.
        single = Partitioning.single(cvd.graph.version_ids())
        event = optimizer.migrate(single)
        assert optimizer.num_partitions == 1
        for vid, rows in expected.items():
            assert sorted(cvd.model.fetch_version(vid)) == rows
        assert event.wall_seconds >= 0

    def test_naive_strategy_inserts_everything(self, optimized):
        cvd, optimizer = optimized
        single = Partitioning.single(cvd.graph.version_ids())
        event = optimizer.migrate(single, strategy="naive")
        assert event.records_inserted == cvd.record_count
        assert event.strategy == "naive"
