"""Shared fixtures: a fresh engine, the paper's protein example, workloads."""

from __future__ import annotations

import pytest

from repro.core.orpheus import OrpheusDB
from repro.storage.engine import Database
from repro.workloads import dataset, load_workload
from repro.workloads.protein import (
    PROTEIN_COLUMNS,
    PROTEIN_PRIMARY_KEY,
)

# Figure 1's protein rows: (protein1, protein2, neighborhood, cooccurrence,
# coexpression).  r1 and r5 are two "versions" of the same logical record.
PAPER_ROWS = [
    ("ENSP273047", "ENSP261890", 0, 53, 0),
    ("ENSP273047", "ENSP235932", 0, 87, 0),
    ("ENSP300413", "ENSP274242", 426, 0, 164),
]


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture
def orpheus() -> OrpheusDB:
    return OrpheusDB()


@pytest.fixture
def protein_cvd(orpheus):
    """A CVD reproducing Figure 1's four-version history.

    v1 = {r1 r2 r3}; v2 edits r1's coexpression (r1->r4) and adds r5;
    v3 deletes r3 from v1; v4 merges v2 and v3.
    """
    orpheus.init(
        "proteins",
        PROTEIN_COLUMNS,
        rows=PAPER_ROWS,
        primary_key=PROTEIN_PRIMARY_KEY,
    )
    orpheus.checkout("proteins", 1, table_name="w2")
    orpheus.db.execute(
        "UPDATE w2 SET coexpression = 83 "
        "WHERE protein1 = 'ENSP273047' AND protein2 = 'ENSP261890'"
    )
    orpheus.db.execute(
        "INSERT INTO w2 VALUES (NULL, 'ENSP309334', 'ENSP346022', 0, 227, 975)"
    )
    orpheus.commit("w2", message="rescore + discover")
    orpheus.checkout("proteins", 1, table_name="w3")
    orpheus.db.execute("DELETE FROM w3 WHERE protein1 = 'ENSP300413'")
    orpheus.commit("w3", message="prune")
    orpheus.checkout("proteins", [2, 3], table_name="w4")
    orpheus.commit("w4", message="merge")
    return orpheus.cvd("proteins")


@pytest.fixture(scope="session")
def sci_tiny():
    return dataset("SCI_TINY").generate()


@pytest.fixture(scope="session")
def cur_tiny():
    return dataset("CUR_TINY").generate()


@pytest.fixture
def sci_cvd(sci_tiny):
    db = Database()
    return load_workload(db, "sci", sci_tiny)


@pytest.fixture
def cur_cvd(cur_tiny):
    db = Database()
    return load_workload(db, "cur", cur_tiny)
