"""Shared fixtures: a fresh engine, the paper's protein example, workloads."""

from __future__ import annotations

import pytest

from repro.core.orpheus import OrpheusDB
from repro.storage.engine import Database
from repro.workloads import dataset, load_workload
from repro.workloads.protein import (
    PROTEIN_COLUMNS,
    PROTEIN_PRIMARY_KEY,
)

#: Per-test wall-clock budget when pytest-timeout is installed (CI
#: installs it; the container image may not have it, so everything below
#: is gated on the plugin's presence).  Suites that fork worker pools or
#: drive subprocesses override via module-level
#: ``pytestmark = pytest.mark.timeout(...)``.
DEFAULT_TEST_TIMEOUT = 60


def pytest_configure(config):
    # Register the marker ourselves so `pytest.mark.timeout(...)`
    # overrides stay warning-free when the plugin is not installed
    # (when it is, this line is a harmless duplicate of its own).
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test wall-clock limit (enforced by "
        "pytest-timeout when installed; inert otherwise)",
    )


def pytest_collection_modifyitems(config, items):
    # A hung fork/subprocess test must fail the run, not wedge it: give
    # every test a default budget — but only when pytest-timeout is
    # actually present to enforce it.
    if not config.pluginmanager.hasplugin("timeout"):
        return
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(DEFAULT_TEST_TIMEOUT))


# Figure 1's protein rows: (protein1, protein2, neighborhood, cooccurrence,
# coexpression).  r1 and r5 are two "versions" of the same logical record.
PAPER_ROWS = [
    ("ENSP273047", "ENSP261890", 0, 53, 0),
    ("ENSP273047", "ENSP235932", 0, 87, 0),
    ("ENSP300413", "ENSP274242", 426, 0, 164),
]


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture
def orpheus() -> OrpheusDB:
    return OrpheusDB()


@pytest.fixture
def protein_cvd(orpheus):
    """A CVD reproducing Figure 1's four-version history.

    v1 = {r1 r2 r3}; v2 edits r1's coexpression (r1->r4) and adds r5;
    v3 deletes r3 from v1; v4 merges v2 and v3.
    """
    orpheus.init(
        "proteins",
        PROTEIN_COLUMNS,
        rows=PAPER_ROWS,
        primary_key=PROTEIN_PRIMARY_KEY,
    )
    orpheus.checkout("proteins", 1, table_name="w2")
    orpheus.db.execute(
        "UPDATE w2 SET coexpression = 83 "
        "WHERE protein1 = 'ENSP273047' AND protein2 = 'ENSP261890'"
    )
    orpheus.db.execute(
        "INSERT INTO w2 VALUES (NULL, 'ENSP309334', 'ENSP346022', 0, 227, 975)"
    )
    orpheus.commit("w2", message="rescore + discover")
    orpheus.checkout("proteins", 1, table_name="w3")
    orpheus.db.execute("DELETE FROM w3 WHERE protein1 = 'ENSP300413'")
    orpheus.commit("w3", message="prune")
    orpheus.checkout("proteins", [2, 3], table_name="w4")
    orpheus.commit("w4", message="merge")
    return orpheus.cvd("proteins")


@pytest.fixture(scope="session")
def sci_tiny():
    return dataset("SCI_TINY").generate()


@pytest.fixture(scope="session")
def cur_tiny():
    return dataset("CUR_TINY").generate()


@pytest.fixture
def sci_cvd(sci_tiny):
    db = Database()
    return load_workload(db, "sci", sci_tiny)


@pytest.fixture
def cur_cvd(cur_tiny):
    db = Database()
    return load_workload(db, "cur", cur_tiny)
