"""Integration tests: full SQL statements against the Database engine."""

import pytest

from repro.errors import (
    CatalogError,
    ConstraintViolationError,
    ExecutionError,
)
from repro.storage.engine import Database


@pytest.fixture
def loaded(db: Database) -> Database:
    db.execute("CREATE TABLE emp (id int PRIMARY KEY, dept text, salary int)")
    db.execute(
        "INSERT INTO emp VALUES (1,'eng',100),(2,'eng',120),"
        "(3,'sales',90),(4,'sales',95),(5,'hr',70)"
    )
    return db


class TestSelectBasics:
    def test_projection_and_filter(self, loaded):
        rows = loaded.query("SELECT id FROM emp WHERE salary >= 95 ORDER BY id")
        assert rows == [(1,), (2,), (4,)]

    def test_expressions_in_select(self, loaded):
        rows = loaded.query("SELECT id, salary * 2 FROM emp WHERE id = 1")
        assert rows == [(1, 200)]

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 2") == [(3,)]

    def test_order_by_desc_and_limit_offset(self, loaded):
        rows = loaded.query("SELECT id FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1")
        assert rows == [(1,), (4,)]

    def test_distinct(self, loaded):
        rows = loaded.query("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert rows == [("eng",), ("hr",), ("sales",)]

    def test_between_like_in(self, loaded):
        rows = loaded.query("SELECT * FROM emp WHERE salary BETWEEN 90 AND 100")
        assert len(rows) == 3
        assert len(loaded.query("SELECT * FROM emp WHERE dept LIKE 's%'")) == 2
        assert len(loaded.query("SELECT * FROM emp WHERE id IN (1, 3)")) == 2

    def test_null_semantics_in_where(self, db):
        db.execute("CREATE TABLE t (a int, b int)")
        db.execute("INSERT INTO t VALUES (1, NULL), (2, 5)")
        # NULL comparisons are unknown, filtered out.
        assert db.query("SELECT a FROM t WHERE b > 1") == [(2,)]
        assert db.query("SELECT a FROM t WHERE b IS NULL") == [(1,)]

    def test_unknown_column_raises(self, loaded):
        with pytest.raises(ExecutionError):
            loaded.query("SELECT nope FROM emp")

    def test_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM ghost")


class TestAggregates:
    def test_global_aggregates(self, loaded):
        assert loaded.query(
            "SELECT count(*), sum(salary), min(salary), max(salary) FROM emp"
        ) == [(5, 475, 70, 120)]

    def test_avg(self, loaded):
        assert loaded.query("SELECT avg(salary) FROM emp")[0][0] == 95.0

    def test_group_by_with_having(self, loaded):
        rows = loaded.query(
            "SELECT dept, count(*) AS n, sum(salary) FROM emp "
            "GROUP BY dept HAVING count(*) > 1 ORDER BY dept"
        )
        assert rows == [("eng", 2, 220), ("sales", 2, 185)]

    def test_count_distinct(self, loaded):
        assert loaded.query("SELECT count(DISTINCT dept) FROM emp") == [(3,)]

    def test_array_agg(self, loaded):
        rows = loaded.query("SELECT array_agg(id) FROM emp WHERE dept = 'eng'")
        assert rows == [((1, 2),)]

    def test_aggregate_on_empty_input(self, loaded):
        assert loaded.query(
            "SELECT count(*), sum(salary) FROM emp WHERE id > 99"
        ) == [(0, None)]

    def test_aggregate_arithmetic(self, loaded):
        rows = loaded.query(
            "SELECT dept, max(salary) - min(salary) FROM emp "
            "GROUP BY dept ORDER BY dept"
        )
        assert rows == [("eng", 20), ("hr", 0), ("sales", 5)]


class TestJoins:
    @pytest.fixture
    def with_depts(self, loaded):
        loaded.execute("CREATE TABLE dept (name text PRIMARY KEY, floor int)")
        loaded.execute("INSERT INTO dept VALUES ('eng', 3), ('sales', 1), ('legal', 9)")
        return loaded

    def test_implicit_equi_join(self, with_depts):
        rows = with_depts.query(
            "SELECT emp.id, dept.floor FROM emp, dept "
            "WHERE emp.dept = dept.name AND emp.salary > 100 ORDER BY id"
        )
        assert rows == [(2, 3)]

    def test_explicit_join(self, with_depts):
        rows = with_depts.query(
            "SELECT emp.id FROM emp JOIN dept ON emp.dept = dept.name "
            "ORDER BY emp.id"
        )
        assert [r[0] for r in rows] == [1, 2, 3, 4]

    def test_left_join_pads_nulls(self, with_depts):
        rows = with_depts.query(
            "SELECT dept.name, emp.id FROM dept LEFT JOIN emp "
            "ON emp.dept = dept.name WHERE dept.name = 'legal'"
        )
        assert rows == [("legal", None)]

    def test_join_methods_agree(self, with_depts):
        expected = sorted(
            with_depts.query(
                "SELECT emp.id, dept.floor FROM emp, dept "
                "WHERE emp.dept = dept.name"
            )
        )
        for method in ("merge", "inl"):
            with_depts.join_method = method
            got = sorted(
                with_depts.query(
                    "SELECT emp.id, dept.floor FROM emp, dept "
                    "WHERE emp.dept = dept.name"
                )
            )
            assert got == expected, method

    def test_cross_join(self, with_depts):
        rows = with_depts.query("SELECT emp.id, dept.name FROM emp, dept")
        assert len(rows) == 15


class TestSubqueries:
    def test_in_subquery(self, loaded):
        rows = loaded.query(
            "SELECT id FROM emp WHERE dept IN "
            "(SELECT dept FROM emp WHERE salary > 110) ORDER BY id"
        )
        assert rows == [(1,), (2,)]

    def test_scalar_subquery(self, loaded):
        rows = loaded.query(
            "SELECT id FROM emp WHERE salary = (SELECT max(salary) FROM emp)"
        )
        assert rows == [(2,)]

    def test_derived_table(self, loaded):
        rows = loaded.query(
            "SELECT t.dept FROM (SELECT dept, count(*) AS n FROM emp "
            "GROUP BY dept) AS t WHERE t.n = 1"
        )
        assert rows == [("hr",)]

    def test_union_all(self, loaded):
        rows = loaded.query(
            "SELECT id FROM emp WHERE id = 1 UNION ALL "
            "SELECT id FROM emp WHERE id = 2"
        )
        assert sorted(rows) == [(1,), (2,)]


class TestArraysInSQL:
    @pytest.fixture
    def versioned(self, db):
        db.execute("CREATE TABLE vt (vid int PRIMARY KEY, rlist int[])")
        db.execute("INSERT INTO vt VALUES (1, ARRAY[10, 11]), (2, ARRAY[11, 12, 13])")
        return db

    def test_containment_checkout_predicate(self, versioned):
        rows = versioned.query("SELECT vid FROM vt WHERE ARRAY[11] <@ rlist")
        assert sorted(rows) == [(1,), (2,)]

    def test_unnest_expansion(self, versioned):
        rows = versioned.query("SELECT unnest(rlist) AS r FROM vt WHERE vid = 2")
        assert rows == [(11,), (12,), (13,)]

    def test_append_via_update(self, versioned):
        versioned.execute("UPDATE vt SET rlist = rlist || 99 WHERE vid = 1")
        assert versioned.query("SELECT rlist FROM vt WHERE vid = 1") == [
            ((10, 11, 99),)
        ]

    def test_array_subquery_insert(self, versioned):
        versioned.execute("CREATE TABLE src (r int)")
        versioned.execute("INSERT INTO src VALUES (7), (8)")
        versioned.execute("INSERT INTO vt VALUES (3, ARRAY[SELECT r FROM src])")
        assert versioned.query("SELECT rlist FROM vt WHERE vid = 3") == [((7, 8),)]

    def test_overlap_and_cardinality(self, versioned):
        rows = versioned.query(
            "SELECT vid FROM vt WHERE rlist && ARRAY[13] "
            "AND cardinality(rlist) = 3"
        )
        assert rows == [(2,)]


class TestDML:
    def test_insert_partial_columns(self, db):
        db.execute("CREATE TABLE t (a int, b text, c int)")
        db.execute("INSERT INTO t (a, c) VALUES (1, 3)")
        assert db.query("SELECT * FROM t") == [(1, None, 3)]

    def test_update_with_expression(self, loaded):
        count = loaded.execute(
            "UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'"
        ).rowcount
        assert count == 2
        assert loaded.query(
            "SELECT sum(salary) FROM emp WHERE dept = 'eng'"
        ) == [(240,)]

    def test_delete_where(self, loaded):
        assert loaded.execute("DELETE FROM emp WHERE salary < 95").rowcount == 2
        assert loaded.query("SELECT count(*) FROM emp") == [(3,)]

    def test_insert_select(self, loaded):
        loaded.execute("CREATE TABLE rich (id int, salary int)")
        loaded.execute("INSERT INTO rich SELECT id, salary FROM emp WHERE salary > 95")
        assert loaded.query("SELECT count(*) FROM rich") == [(2,)]

    def test_duplicate_pk_via_sql(self, loaded):
        with pytest.raises(ConstraintViolationError):
            loaded.execute("INSERT INTO emp VALUES (1, 'x', 1)")


class TestDDLAndInto:
    def test_select_into_creates_table(self, loaded):
        loaded.execute("SELECT id, salary INTO snapshot FROM emp WHERE id < 3")
        assert loaded.query("SELECT count(*) FROM snapshot") == [(2,)]

    def test_into_table_types_carried(self, loaded):
        loaded.execute("SELECT id, dept INTO s2 FROM emp")
        from repro.storage.types import DataType

        schema = loaded.table("s2").schema
        assert schema.column("id").dtype is DataType.INTEGER
        assert schema.column("dept").dtype is DataType.TEXT

    def test_drop_and_if_exists(self, loaded):
        loaded.execute("DROP TABLE emp")
        loaded.execute("DROP TABLE IF EXISTS emp")
        with pytest.raises(CatalogError):
            loaded.execute("DROP TABLE emp")

    def test_create_index_used_for_point_query(self, loaded):
        loaded.execute("CREATE INDEX by_dept ON emp (dept)")
        before = loaded.stats.records_scanned
        loaded.query("SELECT id FROM emp WHERE dept = 'hr'")
        # Index probe touches only the matching row, not all five.
        assert loaded.stats.records_scanned - before <= 2

    def test_multi_statement_script(self, db):
        result = db.execute(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1); "
            "SELECT * FROM t"
        )
        assert result.rows == [(1,)]


class TestStats:
    def test_full_scan_cost_scales_with_table(self, db):
        db.execute("CREATE TABLE t (a int)")
        for i in range(50):
            db.execute("INSERT INTO t VALUES (%s)", (i,))
        db.reset_stats()
        db.query("SELECT * FROM t WHERE a = -1")
        assert db.stats.records_scanned == 50

    def test_pk_point_query_uses_index(self, loaded):
        loaded.reset_stats()
        loaded.query("SELECT * FROM emp WHERE id = 3")
        assert loaded.stats.index_probes == 1
        assert loaded.stats.records_scanned == 1
