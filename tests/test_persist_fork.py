"""Fork-safety of Store: a child must not disturb its parent's fds.

The pre-fork serve workers inherit a loaded read-only Store via
``os.fork()`` and call :meth:`Store.handle_fork` before serving.  These
tests pin the three invariants that makes safe:

- the child re-acquires its *own* advisory locks, and closing its
  inherited fd copies never releases the parent's flocks;
- the child's WAL bookkeeping (offset resume, refresh) works on its own
  fds without corrupting the parent's offset bookkeeping;
- a writer store's WAL append handle is dropped in the child, so the
  parent keeps an uncontested private file offset.
"""

from __future__ import annotations

import fcntl
import json
import os

import pytest

from repro.persist import Store
from repro.persist.store import LOCK_NAME

from test_persist_readonly import build_store

# Fork-based suite: generous per-module override of conftest's
# per-test default timeout.
pytestmark = pytest.mark.timeout(300)


def _fork_and_run(child_fn):
    """Fork; run ``child_fn`` in the child and return its JSON result.

    The child reports over a pipe and leaves via ``os._exit`` so pytest
    machinery (atexit hooks, output capture) never runs twice.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        os.close(read_fd)
        try:
            payload = {"ok": True, "result": child_fn()}
        except BaseException as exc:  # pragma: no cover - failure path
            payload = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        os.write(write_fd, json.dumps(payload).encode("utf-8"))
        os.close(write_fd)
        os._exit(0)
    os.close(write_fd)
    chunks = []
    while True:
        chunk = os.read(read_fd, 65536)
        if not chunk:
            break
        chunks.append(chunk)
    os.close(read_fd)
    _, status = os.waitpid(pid, 0)
    assert status == 0, f"forked child died with status {status}"
    payload = json.loads(b"".join(chunks).decode("utf-8"))
    assert payload["ok"], payload.get("error")
    return payload["result"]


class TestForkedReader:
    def test_child_refresh_does_not_corrupt_parent_offset(self, tmp_path):
        """A forked child's handle_fork + refresh leaves the parent's WAL
        offset bookkeeping untouched, and the parent still refreshes
        correctly afterwards."""
        writer = build_store(tmp_path / "s", versions=3)
        reader = Store.open(tmp_path / "s", mode="ro")
        parent_offset = reader._wal_offset
        parent_marker = reader._wal_marker

        # Advance the writer so the child's refresh has a real tail to
        # apply — the child moves its own offset forward.
        writer.orpheus.checkout("t", 3, table_name="w_child")
        writer.orpheus.run("INSERT INTO w_child (k, v) VALUES ('c', 9)")
        writer.orpheus.commit("w_child", message="for child")

        def child():
            reader.handle_fork()
            result = reader.refresh()
            return {
                "changed": result.changed,
                "offset": reader._wal_offset,
                "lsn": reader.last_lsn,
                "locks": len(reader._lock_handles),
            }

        seen = _fork_and_run(child)
        assert seen["changed"]
        assert seen["offset"] > parent_offset
        assert seen["locks"] >= 1  # re-acquired its own shared lock

        # Parent bookkeeping is exactly as it was before the fork: the
        # child advanced a copy, not shared state.
        assert reader._wal_offset == parent_offset
        assert reader._wal_marker == parent_marker

        # And the parent's own refresh still applies the same tail.
        result = reader.refresh()
        assert result.changed
        assert reader.last_lsn == seen["lsn"]
        rows = reader.orpheus.checkout_rows("t", 4)
        assert ("c", 9) in {tuple(row[1:]) for row in rows}
        reader.close()
        writer.close()

    def test_child_exit_keeps_parent_flock_held(self, tmp_path):
        """Closing the child's inherited + re-acquired lock fds must not
        release the parent's shared flock on LOCK."""
        writer = build_store(tmp_path / "s")
        writer.close()
        reader = Store.open(tmp_path / "s", mode="ro")

        def child():
            reader.handle_fork()
            reader.close()  # drops the child's own locks explicitly
            return True

        assert _fork_and_run(child) is True

        # An exclusive flock on LOCK conflicts with any shared holder; it
        # must still fail because the *parent* still holds its lock.
        with open(tmp_path / "s" / LOCK_NAME, "r") as probe:
            with pytest.raises(OSError):
                fcntl.flock(probe.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        reader.close()
        # Now nothing holds it.
        with open(tmp_path / "s" / LOCK_NAME, "r") as probe:
            fcntl.flock(probe.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            fcntl.flock(probe.fileno(), fcntl.LOCK_UN)

    def test_writer_wal_handle_dropped_in_child(self, tmp_path):
        """The child closes its copy of the WAL append handle; the parent
        writer keeps appending through its own fd unharmed."""
        writer = build_store(tmp_path / "s", versions=2)
        # Force the append handle open.
        assert writer.wal._handle is not None

        def child():
            writer.wal.handle_fork()
            return writer.wal._handle is None

        assert _fork_and_run(child) is True

        # Parent appends still land and recover cleanly.
        writer.orpheus.checkout("t", 2, table_name="w_after")
        writer.orpheus.run("INSERT INTO w_after (k, v) VALUES ('p', 7)")
        writer.orpheus.commit("w_after", message="after fork")
        writer.close()

        check = Store.open(tmp_path / "s", mode="ro")
        rows = check.orpheus.checkout_rows("t", 3)
        assert ("p", 7) in {tuple(row[1:]) for row in rows}
        check.close()

    def test_writer_handle_fork_refuses_second_writer(self, tmp_path):
        """Re-acquiring a writer's exclusive lock in the child fails: two
        live writer processes must never coexist."""
        writer = build_store(tmp_path / "s")

        def child():
            try:
                writer.handle_fork()
            except Exception as exc:
                return type(exc).__name__
            return None

        assert _fork_and_run(child) == "StoreLockedError"
        writer.close()
