"""The serving layer: cache semantics, session pool, concurrent clients.

Cache correctness rests on lsn-tagged keys (state at an lsn is a pure
function of the log); the invalidation tests therefore check both that
results are *right* after a change and that stale entries are actually
*evicted* (memory hygiene) for commits, schema evolution, and partition
migration — the three invalidation sources named by the tentpole.
"""

import threading

from pytest import raises

from repro.errors import PersistenceError, ReadOnlyError
from repro.persist import Store
from repro.serve import (
    CheckoutCache,
    ServeManager,
    ServeServer,
    checkout_key,
    request,
)

from test_persist_readonly import build_store


class TestCheckoutCache:
    def test_hit_miss_and_eviction(self):
        cache = CheckoutCache(capacity=2)
        key_a = checkout_key("t", [1], 5)
        key_b = checkout_key("t", [2], 5)
        key_c = checkout_key("t", [3], 5)
        assert cache.get(key_a) is None
        cache.put(key_a, ["ra"])
        cache.put(key_b, ["rb"])
        assert cache.get(key_a) == ["ra"]  # refreshes LRU position
        cache.put(key_c, ["rc"])  # evicts b, the least recent
        assert cache.get(key_b) is None
        assert cache.get(key_a) == ["ra"]
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 2 and cache.stats.misses == 2

    def test_vid_order_is_significant(self):
        # The first listed version wins primary-key conflicts, so [3, 5]
        # and [5, 3] are different results and must never share an entry.
        assert checkout_key("t", [3, 5], 7) != checkout_key("t", [5, 3], 7)
        assert checkout_key("t", 3, 7) == checkout_key("t", [3], 7)

    def test_lsn_isolates_generations(self):
        cache = CheckoutCache()
        cache.put(checkout_key("t", [1], 5), ["old"])
        assert cache.get(checkout_key("t", [1], 6)) is None

    def test_invalidate_by_cvd_and_lsn(self):
        cache = CheckoutCache()
        cache.put(checkout_key("a", [1], 5), "a5")
        cache.put(checkout_key("b", [1], 5), "b5")
        cache.put(checkout_key("a", [1], 9), "a9")
        dropped = cache.invalidate(cvds={"a"}, below_lsn=9)
        assert dropped == 1
        assert cache.get(checkout_key("a", [1], 9)) == "a9"
        assert cache.get(checkout_key("b", [1], 5)) == "b5"

    def test_invalidate_queries_conservatively(self):
        from repro.serve import query_key

        cache = CheckoutCache()
        cache.put(query_key("SELECT 1", (), 5), "q")
        cache.put(checkout_key("b", [1], 5), "b5")
        # A run record touches no CVD but makes any query result suspect.
        cache.invalidate(cvds=set(), below_lsn=6, queries=True)
        assert cache.get(query_key("SELECT 1", (), 5)) is None
        assert cache.get(checkout_key("b", [1], 5)) == "b5"


class TestServeManager:
    def test_serves_correct_checkouts_and_caches(self, tmp_path):
        build_store(tmp_path / "s").close()
        with ServeManager(tmp_path / "s", readers=2) as manager:
            expected = manager.writer.checkout_rows("t", [1, 3])
            assert manager.checkout("t", [1, 3]) == expected
            assert manager.checkout("t", [1, 3]) == expected  # cache hit
            assert manager.cache.stats.hits >= 1

    def test_cache_respects_checkout_order_precedence(self, tmp_path):
        """Regression: [2, 3] and [3, 2] resolve PK conflicts differently
        (first listed wins), so the cache must not collapse them."""
        store = Store.open(tmp_path / "s", checkpoint_interval=0)
        orpheus = store.orpheus
        orpheus.init(
            "t", [("k", "text"), ("v", "int")], rows=[("a", 1)], primary_key=("k",)
        )
        for vid, value in ((1, 10), (1, 20)):  # two conflicting edits of 'a'
            work = f"w{value}"
            orpheus.checkout("t", vid, table_name=work)
            orpheus.run(f"UPDATE {work} SET v = {value} WHERE k = 'a'")
            orpheus.commit(work, message=f"a={value}")
        store.close()
        with ServeManager(tmp_path / "s", readers=1) as manager:
            forward = manager.checkout("t", [2, 3])
            backward = manager.checkout("t", [3, 2])
            assert [r[2] for r in forward if r[1] == "a"] == [10]
            assert [r[2] for r in backward if r[1] == "a"] == [20]
            # ...and repeats of each order still hit the cache.
            assert manager.checkout("t", [3, 2]) == backward
            assert manager.cache.stats.hits >= 1

    def test_commit_invalidates_and_readers_catch_up(self, tmp_path):
        build_store(tmp_path / "s").close()
        with ServeManager(tmp_path / "s", readers=2) as manager:
            assert len(manager.checkout("t", 3)) == 4
            with manager.write() as writer:
                writer.checkout("t", 3, table_name="w")
                writer.run("INSERT INTO w (k, v) VALUES ('z', 9)")
                writer.commit("w", message="v4")
            rows = manager.checkout("t", 4)
            assert sorted(r[1] for r in rows)[-1] == "z"
            assert manager.cache.stats.invalidated >= 1
            # Both sessions converge on the writer's lsn as they serve.
            manager.checkout("t", 4)
            status = manager.status()
            lsns = {s["lsn"] for s in status["sessions"]}
            assert lsns == {status["writer_lsn"]}

    def test_schema_evolution_invalidates(self, tmp_path):
        build_store(tmp_path / "s").close()
        with ServeManager(tmp_path / "s", readers=1) as manager:
            manager.checkout("t", 3)
            with manager.write() as writer:
                writer.checkout("t", 3, table_name="w")
                writer.run("ALTER TABLE w ADD COLUMN note text")
                writer.run("UPDATE w SET note = 'x' WHERE k = 'a'")
                writer.commit("w", message="wider")
            assert manager.columns("t") == ["rid", "k", "v", "note"]
            rows = manager.checkout("t", 4)
            assert "x" in {r[3] for r in rows}
            assert manager.cache.stats.invalidated >= 1

    def test_partition_migration_invalidates(self, tmp_path):
        build_store(tmp_path / "s", versions=6).close()
        with ServeManager(tmp_path / "s", readers=1) as manager:
            before = manager.checkout("t", 6)
            with manager.write() as writer:
                writer.optimize("t", storage_threshold=4.0, tolerance=1.2)
            assert manager.checkout("t", 6) == before  # same logical rows
            assert manager.cache.stats.invalidated >= 1
            session = manager._sessions[0]
            model = session.orpheus.cvd("t").model
            assert model.model_name == "partitioned_rlist"

    def test_query_caching_and_invalidation(self, tmp_path):
        build_store(tmp_path / "s").close()
        with ServeManager(tmp_path / "s", readers=1) as manager:
            sql = "SELECT count(*) FROM VERSION 3 OF CVD t"
            assert manager.query(sql).rows == [(4,)]
            assert manager.query(sql).rows == [(4,)]
            assert manager.cache.stats.hits >= 1
            with manager.write() as writer:
                writer.checkout("t", 3, table_name="w")
                writer.run("INSERT INTO w (k, v) VALUES ('q', 1)")
                writer.commit("w", message="v4")
            assert manager.query(
                "SELECT count(*) FROM VERSION 4 OF CVD t"
            ).rows == [(5,)]

    def test_close_wakes_borrowers_blocked_on_the_pool(self, tmp_path):
        """Regression: close() used to swap the idle queue for a fresh
        one, so a thread already blocked in session() hung forever."""
        build_store(tmp_path / "s").close()
        manager = ServeManager(tmp_path / "s", readers=1)
        entered = threading.Event()
        outcome: list = []

        def hold_then_release():
            with manager.session() as _session:
                entered.set()
                released.wait(timeout=10)

        def blocked_borrower():
            entered.wait(timeout=10)
            try:
                with manager.session():
                    outcome.append("served")
            except PersistenceError:
                outcome.append("closed")

        released = threading.Event()
        holder = threading.Thread(target=hold_then_release)
        waiter = threading.Thread(target=blocked_borrower)
        holder.start()
        waiter.start()
        entered.wait(timeout=10)
        # waiter is (about to be) blocked on the empty pool; close must
        # wake it with a clean error, not leave it hanging.
        manager.close()
        released.set()
        waiter.join(timeout=10)
        holder.join(timeout=10)
        assert not waiter.is_alive()
        assert outcome == ["closed"]
        # The borrowed session was retired by its borrower, the writer
        # lock released by close: a fresh writer can open.
        Store.open(tmp_path / "s").close()

    def test_sessions_reject_writes(self, tmp_path):
        build_store(tmp_path / "s").close()
        with ServeManager(tmp_path / "s", readers=1) as manager:
            with manager.session() as session:
                with raises(ReadOnlyError):
                    session.orpheus.run("INSERT INTO t__meta (vid) VALUES (9)")

    def test_follower_mode_sees_external_writer(self, tmp_path):
        writer = build_store(tmp_path / "s")
        with ServeManager(tmp_path / "s", readers=2, writer=False) as manager:
            assert manager.writer is None
            with raises(PersistenceError):
                with manager.write():
                    pass
            assert len(manager.checkout("t", 3)) == 4
            writer.orpheus.checkout("t", 3, table_name="w")
            writer.orpheus.run("INSERT INTO w (k, v) VALUES ('ext', 1)")
            writer.orpheus.commit("w", message="external v4")
            # Follower polls the WAL tail on every borrow.
            assert len(manager.checkout("t", 4)) == 5
        writer.close()

    def test_concurrent_checkouts_are_consistent(self, tmp_path):
        build_store(tmp_path / "s", versions=5).close()
        with ServeManager(tmp_path / "s", readers=4) as manager:
            expected = {
                vid: manager.writer.checkout_rows("t", vid)
                for vid in range(1, 6)
            }
            errors = []

            def hammer(worker: int):
                try:
                    for i in range(40):
                        vid = (worker + i) % 5 + 1
                        assert manager.checkout("t", vid) == expected[vid]
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(n,)) for n in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            status = manager.status()
            assert status["cache"]["hits"] > 0

    def test_concurrent_reads_while_writer_commits(self, tmp_path):
        build_store(tmp_path / "s").close()
        with ServeManager(tmp_path / "s", readers=3) as manager:
            stop = threading.Event()
            errors = []

            def read_loop():
                while not stop.is_set():
                    try:
                        for vid in range(1, 4):
                            rows = manager.checkout("t", vid)
                            assert rows, f"empty checkout for v{vid}"
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=read_loop) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                for round_number in range(5):
                    with manager.write() as writer:
                        vid = writer.cvd("t").version_count
                        work = f"c{round_number}"
                        writer.checkout("t", vid, table_name=work)
                        writer.run(
                            f"INSERT INTO {work} (k, v) "
                            f"VALUES ('c{round_number}', {round_number})"
                        )
                        writer.commit(work, message=f"concurrent {round_number}")
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            assert errors == []
            assert manager.writer.cvd("t").version_count == 8


class TestServeServer:
    def test_tcp_roundtrip_and_shutdown(self, tmp_path):
        build_store(tmp_path / "s").close()
        server = ServeServer(ServeManager(tmp_path / "s", readers=2)).start()
        host, port = server.address
        try:
            assert request(host, port, {"op": "ping"})["pong"] is True
            reply = request(
                host, port, {"op": "checkout", "cvd": "t", "vids": [3]}
            )
            assert reply["ok"] and reply["count"] == 4
            assert reply["columns"] == ["rid", "k", "v"]
            reply = request(
                host, port,
                {"op": "query", "sql": "SELECT count(*) FROM VERSION 1 OF CVD t"},
            )
            assert reply["rows"] == [[2]]
            status = request(host, port, {"op": "status"})["status"]
            assert status["readers"] == 2
            bad = request(host, port, {"op": "checkout", "cvd": "nope", "vids": [1]})
            assert not bad["ok"] and "nope" in bad["error"]
            refreshed = request(host, port, {"op": "refresh"})
            assert refreshed["ok"] and len(refreshed["sessions"]) == 2
            assert refreshed["busy"] == 0
            # Malformed payloads get an error line, never a dropped
            # connection (the handler survives arbitrary exceptions).
            weird = request(host, port, {"op": "checkout", "cvd": "t", "vids": [[1]]})
            assert not weird["ok"]
            assert request(host, port, {"op": "shutdown"})["ok"]
        finally:
            server.shutdown()

    def test_concurrent_tcp_clients(self, tmp_path):
        build_store(tmp_path / "s", versions=4).close()
        server = ServeServer(ServeManager(tmp_path / "s", readers=3)).start()
        host, port = server.address
        errors = []

        def client(worker: int):
            try:
                for i in range(10):
                    vid = (worker + i) % 4 + 1
                    reply = request(
                        host, port, {"op": "checkout", "cvd": "t", "vids": [vid]}
                    )
                    assert reply["ok"] and reply["count"] >= 2
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=client, args=(n,)) for n in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
        finally:
            server.shutdown()

    def test_server_closes_manager_on_shutdown(self, tmp_path):
        build_store(tmp_path / "s").close()
        manager = ServeManager(tmp_path / "s", readers=1)
        server = ServeServer(manager).start()
        server.shutdown()
        with raises(PersistenceError):
            manager.checkout("t", 1)
        # The writer lock was released with the manager.
        Store.open(tmp_path / "s").close()
