"""The pre-fork worker pool: topology, lifecycle, sharing, freshness.

What must hold for ``orpheus serve --workers N``:

- one snapshot load total (the parent's); every worker's own
  ``persist.snapshot.loads`` is zero in steady state, observed through
  ``{"op": "stats"}`` on its pinned connection;
- a connection is served start-to-finish by one worker, so N concurrent
  connections land on N distinct pids;
- killing a worker with SIGKILL neither disturbs the other workers'
  in-flight connections nor shrinks the pool — the supervisor re-forks
  a replacement from the already-loaded template;
- SIGTERM to the pool drains cleanly (exit 0, every worker reaped);
- results are shared across processes through the L2 cache, and the
  ``min_lsn`` fence + per-request refresh keep follower workers from
  serving behind a client-observed lsn.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.persist import Store
from repro.serve import PreforkServer
from repro.serve.server import ServeClient, request, rows_checksum

from invariants import assert_fence_honesty, assert_refresh_convergence
from test_persist_readonly import build_store

SRC = str(Path(__file__).resolve().parent.parent / "src")

# Forked pools, real subprocesses, kill/respawn cycles: a generous
# per-module override of conftest's per-test default timeout.
pytestmark = pytest.mark.timeout(300)


@pytest.fixture
def store_path(tmp_path):
    store = build_store(tmp_path / "s", versions=4)
    store.close()
    return tmp_path / "s"


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def snapshot_loads(client: ServeClient) -> int:
    snap = client.request({"op": "stats"})["stats"]["metrics"]
    return snap.get("persist.snapshot.loads", 0)


class TestPreforkEmbedded:
    def test_roundtrip_and_lsn(self, store_path):
        with PreforkServer(store_path, workers=2) as server:
            host, port = server.address
            reply = request(host, port, {"op": "checkout", "cvd": "t", "vids": [4]})
            assert reply["ok"] and reply["count"] == 5
            assert reply["lsn"] > 0
            assert reply["columns"][0] == "rid"
            # rows:false keeps the payload off the wire but proves it.
            lean = request(
                host, port,
                {"op": "checkout", "cvd": "t", "vids": [4], "rows": False},
            )
            assert lean["ok"] and "rows" not in lean
            assert lean["count"] == reply["count"]
            assert lean["checksum"] == rows_checksum(
                tuple(row) for row in reply["rows"]
            )

    def test_connections_pin_distinct_workers_with_zero_loads(self, store_path):
        with PreforkServer(store_path, workers=3) as server:
            host, port = server.address
            clients = [ServeClient(host, port) for _ in range(3)]
            try:
                pids = []
                for client in clients:
                    stats = client.request({"op": "stats"})["stats"]
                    pids.append(stats["pid"])
                # The shared accept queue + one-connection-at-a-time
                # worker loop give a client<->worker bijection.
                assert len(set(pids)) == 3
                assert set(pids) == set(server.worker_pids())
                # Steady state: the snapshot was loaded once, pre-fork,
                # in the parent; no worker ever loads it again.
                for client in clients:
                    client.request({"op": "checkout", "cvd": "t", "vids": [3]})
                    assert snapshot_loads(client) == 0
            finally:
                for client in clients:
                    client.close()

    def test_l2_shares_checkouts_across_workers(self, store_path):
        with PreforkServer(store_path, workers=2, cache_capacity=64) as server:
            host, port = server.address
            first = ServeClient(host, port)
            second = ServeClient(host, port)
            try:
                assert (
                    first.request({"op": "stats"})["stats"]["pid"]
                    != second.request({"op": "stats"})["stats"]["pid"]
                )
                payload = {"op": "checkout", "cvd": "t", "vids": [4, 2]}
                a = first.request(payload)
                b = second.request(payload)
                assert a["ok"] and b["ok"] and a["rows"] == b["rows"]
                # Worker 2's copy came over the L2 socket, not a rescan.
                l2 = second.request({"op": "status"})["status"]["l2"]
                assert l2["hits"] >= 1
            finally:
                first.close()
                second.close()

    def test_shared_cache_off_degrades_to_local_compute(self, store_path):
        with PreforkServer(
            store_path, workers=2, cache_capacity=0, shared_cache=False
        ) as server:
            host, port = server.address
            reply = request(host, port, {"op": "checkout", "cvd": "t", "vids": [4]})
            assert reply["ok"] and reply["count"] == 5
            status = request(host, port, {"op": "status"})["status"]
            assert "l2" not in status
            assert status["cache"]["entries"] == 0  # capacity 0 = disabled

    def test_fence_and_follower_freshness(self, store_path):
        with PreforkServer(store_path, workers=2) as server:
            host, port = server.address
            seen = request(host, port, {"op": "checkout", "cvd": "t", "vids": [4]})
            # A watermark from the future is an error, not a stale answer.
            stale = request(
                host, port,
                {"op": "checkout", "cvd": "t", "vids": [4],
                 "min_lsn": seen["lsn"] + 1000},
            )
            assert not stale["ok"] and stale["code"] == "stale_read"
            # The chaos gate's fence invariant on the same probe.
            assert_fence_honesty(0, [(seen["lsn"] + 1000, stale)])

            # A writer in another process commits; every worker observes
            # the new lsn on its next request (per-request tail poll),
            # and the fence admits the new watermark.
            writer = Store.open(store_path)
            writer.orpheus.checkout("t", 4, table_name="w_new")
            writer.orpheus.run("INSERT INTO w_new (k, v) VALUES ('z', 42)")
            writer.orpheus.commit("w_new", message="v5")
            writer_lsn = writer.last_lsn
            writer.close()

            fresh = request(
                host, port,
                {"op": "checkout", "cvd": "t", "vids": [5],
                 "min_lsn": writer_lsn},
            )
            assert fresh["ok"] and fresh["lsn"] >= writer_lsn
            assert fresh["count"] == 6
            # And the chaos gate's convergence invariant: the serving
            # tier must reach the writer's durable tip within bounds.
            assert_refresh_convergence(
                refresh=lambda: request(host, port, {"op": "refresh"}),
                current_lsn=lambda: request(
                    host, port, {"op": "checkout", "cvd": "t", "vids": [4]}
                )["lsn"],
                target_lsn=writer_lsn,
            )

    def test_sigkill_worker_respawns_and_others_survive(self, store_path):
        with PreforkServer(store_path, workers=2) as server:
            host, port = server.address
            survivor = ServeClient(host, port)
            victim = ServeClient(host, port)
            try:
                survivor_pid = survivor.request({"op": "stats"})["stats"]["pid"]
                victim_pid = victim.request({"op": "stats"})["stats"]["pid"]
                assert survivor_pid != victim_pid

                os.kill(victim_pid, signal.SIGKILL)
                with pytest.raises((ConnectionError, OSError)):
                    victim.request({"op": "ping"})

                # The other worker's pinned connection never noticed.
                reply = survivor.request(
                    {"op": "checkout", "cvd": "t", "vids": [4]}
                )
                assert reply["ok"] and reply["count"] == 5

                # The supervisor re-forks; the pool returns to strength
                # with a brand-new pid — and the respawn did not reload
                # the snapshot either.
                assert wait_until(
                    lambda: len(server.worker_pids()) == 2
                    and victim_pid not in server.worker_pids()
                )
                assert server.respawns == 1
                replacement = ServeClient(host, port)
                try:
                    stats = replacement.request({"op": "stats"})["stats"]
                    assert stats["pid"] not in (survivor_pid, victim_pid)
                    assert snapshot_loads(replacement) == 0
                finally:
                    replacement.close()
            finally:
                survivor.close()
                victim.close()

    def test_crash_loop_exhausts_respawn_limit(self, store_path):
        """A pool that keeps dying must be a bounded, visible failure:
        past the respawn limit the supervisor records the cause and
        winds the whole pool down instead of respawning forever."""
        with PreforkServer(store_path, workers=2, respawn_limit=1) as server:
            for _ in range(2):
                victim_pid = server.worker_pids()[0]
                os.kill(victim_pid, signal.SIGKILL)
                assert wait_until(
                    lambda: victim_pid not in server.worker_pids()
                )
            assert wait_until(lambda: server.failure is not None)
            assert "signal 9" in server.failure
            assert "respawn limit 1 exhausted" in server.failure
            assert server.respawns == 1
            assert wait_until(lambda: not server.worker_pids())


class TestPreforkCli:
    def _start(self, store, *extra):
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "--store", str(store), "serve", "--workers", "4", *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": SRC},
        )

    def test_cli_concurrent_checkouts_and_shutdown_op(self, store_path):
        server = self._start(store_path)
        try:
            banner = server.stdout.readline()
            assert "prefork mode" in banner, (banner, server.stderr.read())
            port = int(banner.split(":")[-1].split()[0])

            clients = [ServeClient("127.0.0.1", port) for _ in range(4)]
            try:
                pids = {
                    c.request({"op": "stats"})["stats"]["pid"] for c in clients
                }
                assert len(pids) == 4
                for step, client in enumerate(clients):
                    reply = client.request(
                        {"op": "checkout", "cvd": "t", "vids": [step % 4 + 1]}
                    )
                    assert reply["ok"] and reply["count"] >= 2
            finally:
                for client in clients:
                    client.close()

            # The shutdown op winds down the whole pool, workers first.
            with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
                conn.sendall(json.dumps({"op": "shutdown"}).encode() + b"\n")
                with conn.makefile("rb") as reader:
                    assert json.loads(reader.readline())["ok"]
            assert server.wait(timeout=30) == 0
            assert "shutdown clean" in server.stdout.read()
            for pid in pids:
                with pytest.raises(ProcessLookupError):
                    os.kill(pid, 0)
        finally:
            if server.poll() is None:  # pragma: no cover - failure path
                server.kill()
                server.wait()

    def test_cli_crash_loop_exits_nonzero_with_cause(self, store_path):
        """``orpheus serve`` must not hang or report success when its
        pool crash-loops: past the limit it logs the dead worker's pid
        and signal on stderr and exits 1 (so CI and supervisors see it)."""
        server = self._start(store_path, "--respawn-limit", "0")
        try:
            banner = server.stdout.readline()
            assert "prefork mode" in banner, (banner, server.stderr.read())
            port = int(banner.split(":")[-1].split()[0])
            client = ServeClient("127.0.0.1", port)
            try:
                worker_pid = client.request({"op": "stats"})["stats"]["pid"]
            finally:
                client.close()

            os.kill(worker_pid, signal.SIGKILL)
            assert server.wait(timeout=30) == 1
            stderr = server.stderr.read()
            assert "error:" in stderr
            assert str(worker_pid) in stderr
            assert "signal 9" in stderr
        finally:
            if server.poll() is None:  # pragma: no cover - failure path
                server.kill()
                server.wait()

    def test_cli_sigterm_drains_cleanly(self, store_path):
        server = self._start(store_path)
        try:
            banner = server.stdout.readline()
            port = int(banner.split(":")[-1].split()[0])
            client = ServeClient("127.0.0.1", port)
            try:
                worker_pid = client.request({"op": "stats"})["stats"]["pid"]
                assert client.request({"op": "ping"})["ok"]
            finally:
                client.close()

            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=30) == 0
            assert "shutdown clean" in server.stdout.read()
            with pytest.raises(ProcessLookupError):
                os.kill(worker_pid, 0)
        finally:
            if server.poll() is None:  # pragma: no cover - failure path
                server.kill()
                server.wait()
