"""Tests for LyreSplit: Algorithm 1, Theorem 2's bounds, DAG reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partition.bipartite import BipartiteGraph
from repro.partition.dag_reduction import (
    VersionTreeView,
    reduce_to_tree,
    tree_from_mappings,
)
from repro.partition.lyresplit import lyresplit


def chain_tree(n: int, records: int, shared: int) -> VersionTreeView:
    """v1 -> v2 -> ... -> vn, each with ``records`` records sharing
    ``shared`` with its parent."""
    parents = {1: None}
    counts = {1: records}
    weights = {}
    for vid in range(2, n + 1):
        parents[vid] = vid - 1
        counts[vid] = records
        weights[(vid - 1, vid)] = shared
    return tree_from_mappings(parents, counts, weights)


class TestAlgorithmBasics:
    def test_high_overlap_single_partition(self):
        """Lemma 1: when every edge is heavy, one partition suffices."""
        tree = chain_tree(10, records=100, shared=99)
        result = lyresplit(tree, delta=0.5)
        assert result.num_partitions == 1
        assert result.levels == 0

    def test_zero_overlap_splits_fully(self):
        tree = chain_tree(8, records=100, shared=0)
        result = lyresplit(tree, delta=1.0)
        assert result.num_partitions == 8

    def test_partitions_cover_all_versions(self):
        tree = chain_tree(20, records=50, shared=25)
        result = lyresplit(tree, delta=0.6)
        covered = result.partitioning.version_ids()
        assert covered == set(range(1, 21))

    def test_partitions_are_connected_subtrees(self, sci_cvd):
        bip = BipartiteGraph.from_cvd(sci_cvd)
        tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
        result = lyresplit(tree, delta=0.5)
        for group in result.partitioning.groups:
            roots = [
                v
                for v in group
                if tree.parent[v] is None or tree.parent[v] not in group
            ]
            assert len(roots) == 1, "each partition must be one subtree"

    def test_invalid_delta_rejected(self):
        tree = chain_tree(3, 10, 5)
        with pytest.raises(PartitionError):
            lyresplit(tree, delta=0.0)
        with pytest.raises(PartitionError):
            lyresplit(tree, delta=1.5)

    def test_unknown_edge_rule_rejected(self):
        with pytest.raises(PartitionError):
            lyresplit(chain_tree(3, 10, 5), 0.5, edge_rule="random")

    def test_edge_rules_both_terminate_with_valid_output(self, sci_cvd):
        bip = BipartiteGraph.from_cvd(sci_cvd)
        tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
        for rule in ("balance", "min_weight"):
            result = lyresplit(tree, 0.5, edge_rule=rule)
            assert result.partitioning.version_ids() == set(sci_cvd.membership)


class TestTheorem2Bounds:
    """Storage within (1+delta)^l * |R|; checkout within (1/delta) * |E|/|V|."""

    @pytest.mark.parametrize("delta", [0.2, 0.5, 0.8])
    def test_bounds_on_sci_workload(self, sci_cvd, delta):
        bip = BipartiteGraph.from_cvd(sci_cvd)
        tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
        result = lyresplit(tree, delta)
        storage = bip.storage_cost(result.partitioning)
        checkout = bip.checkout_cost(result.partitioning)
        assert storage <= (1 + delta) ** result.levels * bip.num_records
        assert checkout <= (1 / delta) * bip.min_checkout_cost

    @pytest.mark.parametrize("delta", [0.3, 0.6])
    def test_bounds_on_cur_workload(self, cur_cvd, delta):
        """DAG case (Theorem 3): storage bound gains the R-hat factor."""
        bip = BipartiteGraph.from_cvd(cur_cvd)
        tree = reduce_to_tree(cur_cvd.graph, bip.num_records)
        result = lyresplit(tree, delta)
        storage = bip.storage_cost(result.partitioning)
        checkout = bip.checkout_cost(result.partitioning)
        r_hat = tree.duplicated_records
        bound = (
            (bip.num_records + r_hat)
            / bip.num_records
            * (1 + delta) ** result.levels
            * bip.num_records
        )
        assert storage <= bound
        assert checkout <= (1 / delta) * bip.min_checkout_cost

    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_checkout_bound_property_on_chains(self, n, shared, delta):
        records = shared + 10
        tree = chain_tree(n, records=records, shared=shared)
        result = lyresplit(tree, delta)
        # Tree-side cost accounting (exact for chains).
        total = 0
        for group in result.partitioning.groups:
            root = min(group)
            part_records = tree.num_records[root] + sum(
                tree.new_record_count(v) for v in group if v != root
            )
            total += len(group) * part_records
        cavg = total / n
        assert cavg <= (1 / delta) * tree.num_edges / n + 1e-9


class TestMonotonicity:
    def test_more_delta_more_partitions(self, sci_cvd):
        bip = BipartiteGraph.from_cvd(sci_cvd)
        tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
        sizes = [
            lyresplit(tree, delta).num_partitions
            for delta in (0.1, 0.4, 0.7, 1.0)
        ]
        assert sizes == sorted(sizes)

    def test_storage_checkout_tradeoff(self, sci_cvd):
        bip = BipartiteGraph.from_cvd(sci_cvd)
        tree = reduce_to_tree(sci_cvd.graph, bip.num_records)
        low = lyresplit(tree, 0.2)
        high = lyresplit(tree, 0.9)
        assert bip.storage_cost(low.partitioning) <= bip.storage_cost(high.partitioning)
        assert bip.checkout_cost(low.partitioning) >= bip.checkout_cost(
            high.partitioning
        )


class TestDagReduction:
    def test_figure17_reduction(self):
        """Appendix C.1's example: v4 keeps parent v3 (w=4 beats w=3).

        Figure 4/17 weights: w(1,2)=2, w(1,3)=1, w(2,4)=3, w(3,4)=4 over
        |R(v)| = 3, 3, 4, 6 and a true |R| of 7 (records r1..r7).
        """
        from repro.core.version import Version
        from repro.core.version_graph import VersionGraph

        graph = VersionGraph()
        graph.add_version(Version(1, (), num_records=3), {})
        graph.add_version(Version(2, (1,), num_records=3), {1: 2})
        graph.add_version(Version(3, (1,), num_records=4), {1: 1})
        graph.add_version(Version(4, (2, 3), num_records=6), {2: 3, 3: 4})
        tree = reduce_to_tree(graph, true_record_count=7)
        assert tree.parent[4] == 3
        # The tree sees 3 + (3-2) + (4-1) + (6-4) = 9 records: r-hat2 and
        # r-hat4 are conceptual duplicates (the figure's R-hat = 2).
        assert tree.tree_record_count == 9
        assert tree.duplicated_records == 2

    def test_keep_first_rule(self):
        from repro.core.version import Version
        from repro.core.version_graph import VersionGraph

        graph = VersionGraph()
        graph.add_version(Version(1, (), num_records=3), {})
        graph.add_version(Version(2, (1,), num_records=3), {1: 2})
        graph.add_version(Version(3, (1,), num_records=4), {1: 1})
        graph.add_version(Version(4, (2, 3), num_records=6), {2: 3, 3: 4})
        tree = reduce_to_tree(graph, 7, keep_rule="first")
        assert tree.parent[4] == 2

    def test_tree_graph_passthrough(self, sci_cvd):
        tree = reduce_to_tree(sci_cvd.graph)
        assert tree.duplicated_records == 0
        assert tree.num_versions == sci_cvd.version_count

    def test_cur_reduction_r_hat_positive(self, cur_cvd, cur_tiny):
        bip = BipartiteGraph.from_cvd(cur_cvd)
        tree = reduce_to_tree(cur_cvd.graph, bip.num_records)
        if cur_tiny.has_merges:
            assert tree.duplicated_records > 0
        assert tree.num_edges == bip.num_edges
