"""Unit tests for the provenance manager, access controller, and IO stats."""

import pytest

from repro.core.access import AccessController
from repro.core.provenance import ProvenanceManager, StagedCheckout
from repro.errors import PermissionDeniedError, StagingError, VersioningError
from repro.storage.iostats import IOStats


def staged(name="w", cvd="c", owner="alice", when=1, is_file=False):
    return StagedCheckout(name, cvd, (1,), owner, when, is_file)


class TestProvenanceManager:
    def test_register_lookup_remove(self):
        manager = ProvenanceManager()
        manager.register(staged())
        assert manager.lookup("w").cvd_name == "c"
        removed = manager.remove("w")
        assert removed.owner == "alice"
        with pytest.raises(StagingError):
            manager.lookup("w")

    def test_double_register_rejected(self):
        manager = ProvenanceManager()
        manager.register(staged())
        with pytest.raises(StagingError):
            manager.register(staged())

    def test_staged_for_cvd(self):
        manager = ProvenanceManager()
        manager.register(staged("w1", "a"))
        manager.register(staged("w2", "b"))
        manager.register(staged("w3", "a"))
        assert {s.name for s in manager.staged_for_cvd("a")} == {"w1", "w3"}
        assert manager.staged_names() == ["w1", "w2", "w3"]

    def test_csv_checkouts_tracked_by_path(self):
        manager = ProvenanceManager()
        manager.register(staged("/tmp/x.csv", is_file=True))
        assert manager.lookup("/tmp/x.csv").is_file


class TestAccessController:
    def test_user_lifecycle(self):
        access = AccessController()
        access.create_user("alice")
        access.login("alice")
        assert access.whoami() == "alice"
        assert access.has_user("alice")
        assert not access.has_user("bob")

    def test_empty_username_rejected(self):
        with pytest.raises(VersioningError):
            AccessController().create_user("")

    def test_whoami_without_login(self):
        with pytest.raises(PermissionDeniedError):
            AccessController().whoami()

    def test_owner_checks(self):
        access = AccessController()
        access.grant_owner("w", "alice")
        access.check_owner("w", "alice")  # no raise
        with pytest.raises(PermissionDeniedError):
            access.check_owner("w", "bob")
        access.revoke("w")
        access.check_owner("w", "bob")  # unowned tables are open

    def test_revoke_idempotent(self):
        access = AccessController()
        access.revoke("never-registered")  # must not raise


class TestIOStats:
    def test_snapshot_and_since(self):
        stats = IOStats()
        stats.records_scanned = 10
        snap = stats.snapshot()
        stats.records_scanned = 25
        stats.rows_written = 3
        delta = stats.since(snap)
        assert delta.records_scanned == 15
        assert delta.rows_written == 3

    def test_reset(self):
        stats = IOStats(records_scanned=5, index_probes=2)
        stats.reset()
        assert stats.records_scanned == 0
        assert stats.total_touched == 0

    def test_total_touched(self):
        stats = IOStats(
            records_scanned=1, index_probes=2, rows_written=3, rows_deleted=4
        )
        assert stats.total_touched == 10
