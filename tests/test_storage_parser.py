"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.storage.expression import (
    ArrayLiteral,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    Literal,
    Star,
)
from repro.storage.parser import parse_statement
from repro.storage.parser import ast_nodes as ast
from repro.storage.parser.lexer import TokenType, tokenize
from repro.storage.parser.parser import (
    ArraySubquery,
    InSubquery,
    ScalarSubquery,
)
from repro.storage.types import DataType


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT foo FROM bar")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.KEYWORD,
            TokenType.IDENT,
            TokenType.KEYWORD,
            TokenType.IDENT,
        ]

    def test_array_operators_max_munch(self):
        tokens = tokenize("a <@ b @> c && d || e")
        ops = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == ["<@", "@>", "&&", "||"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\n + 2")
        values = [t.value for t in tokens[:-1]]
        assert "comment" not in values

    def test_params(self):
        tokens = tokenize("a = %s AND b = ?")
        params = [t for t in tokens if t.type is TokenType.PARAM]
        assert len(params) == 2

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT 'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 .75")
        values = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert values == ["1", "2.5", ".75"]


class TestParseSelect:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b FROM t WHERE a > 1")
        assert isinstance(stmt, ast.Select)
        assert [item.alias for item in stmt.items] == [None, None]
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.from_items[0].table == "t"

    def test_select_into(self):
        stmt = parse_statement("SELECT * INTO t2 FROM t")
        assert stmt.into_table == "t2"
        assert isinstance(stmt.items[0].expr, Star)

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u, v w")
        assert [item.alias for item in stmt.items] == ["x", "y"]
        assert stmt.from_items[0].binding == "u"
        assert stmt.from_items[1].binding == "w"

    def test_subquery_in_from(self):
        stmt = parse_statement(
            "SELECT * FROM (SELECT unnest(rlist) AS r FROM vt) AS tmp"
        )
        assert isinstance(stmt.from_items[0], ast.SubqueryRef)
        assert stmt.from_items[0].alias == "tmp"

    def test_group_by_having_order_limit(self):
        stmt = parse_statement(
            "SELECT vid, count(*) AS n FROM t GROUP BY vid "
            "HAVING count(*) > 2 ORDER BY n DESC, vid LIMIT 5 OFFSET 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False
        assert (stmt.limit, stmt.offset) == (5, 2)

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_explicit_join(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.y = c.z"
        )
        assert [j.kind for j in stmt.joins] == ["inner", "left"]

    def test_union_all(self):
        stmt = parse_statement("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert stmt.union_all_with is not None

    def test_array_containment_where(self):
        stmt = parse_statement("SELECT * FROM t WHERE ARRAY[3] <@ vlist")
        assert stmt.where.op == "<@"
        assert isinstance(stmt.where.left, ArrayLiteral)

    def test_params_substituted(self):
        stmt = parse_statement("SELECT * FROM t WHERE a = %s AND b = ?", (10, "x"))
        conj = stmt.where
        assert conj.left.right == Literal(10)
        assert conj.right.right == Literal("x")

    def test_unused_params_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1", (5,))

    def test_missing_params_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT %s")


class TestParseExpressions:
    def _where(self, text, params=()):
        return parse_statement(f"SELECT * FROM t WHERE {text}", params).where

    def test_precedence_and_or(self):
        expr = self._where("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_arithmetic_precedence(self):
        expr = self._where("a = 1 + 2 * 3")
        assert expr.right.op == "+"
        assert expr.right.right.op == "*"

    def test_in_list_and_not_in(self):
        expr = self._where("a IN (1, 2, 3)")
        assert isinstance(expr, InList) and not expr.negated
        expr = self._where("a NOT IN (1)")
        assert isinstance(expr, InList) and expr.negated

    def test_in_subquery(self):
        expr = self._where("a IN (SELECT x FROM u)")
        assert isinstance(expr, InSubquery)

    def test_between_like_isnull(self):
        assert self._where("a BETWEEN 1 AND 5").low == Literal(1)
        assert self._where("a LIKE 'x%'").pattern == Literal("x%")
        assert self._where("a IS NOT NULL").negated

    def test_scalar_subquery(self):
        expr = self._where("a > (SELECT max(x) FROM u)")
        assert isinstance(expr.right, ScalarSubquery)

    def test_array_subquery_both_spellings(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, ARRAY[SELECT r FROM u])")
        assert isinstance(stmt.rows[0][1], ArraySubquery)
        stmt = parse_statement("INSERT INTO t VALUES (1, ARRAY(SELECT r FROM u))")
        assert isinstance(stmt.rows[0][1], ArraySubquery)

    def test_function_calls(self):
        expr = self._where("cardinality(rlist) >= 3")
        assert isinstance(expr.left, FuncCall)
        assert expr.left.name == "cardinality"

    def test_qualified_column(self):
        expr = self._where("t.a = u.b")
        assert expr.left == ColumnRef("t.a")


class TestParseDML:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM u")
        assert stmt.query is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET vlist = vlist || 5 WHERE rid = 1")
        assert stmt.assignments[0][0] == "vlist"
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t")
        assert stmt.where is None


class TestParseDDL:
    def test_create_table_with_composite_pk(self):
        stmt = parse_statement(
            "CREATE TABLE p (a text, b text, n int NOT NULL, "
            "PRIMARY KEY (a, b))"
        )
        assert stmt.primary_key == ("a", "b")
        assert stmt.columns[2].not_null

    def test_create_table_inline_pk_and_array(self):
        stmt = parse_statement("CREATE TABLE vt (vid int PRIMARY KEY, rlist int[])")
        assert stmt.primary_key == ("vid",)
        assert stmt.columns[1].dtype is DataType.INT_ARRAY

    def test_create_table_if_not_exists(self):
        assert parse_statement("CREATE TABLE IF NOT EXISTS t (a int)").if_not_exists

    def test_create_index(self):
        stmt = parse_statement("CREATE UNIQUE INDEX i ON t USING btree (a, b)")
        assert stmt.unique and stmt.ordered and stmt.columns == ("a", "b")

    def test_drop_table_if_exists(self):
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists

    def test_alter_add_column(self):
        stmt = parse_statement("ALTER TABLE t ADD COLUMN c decimal DEFAULT 0")
        assert stmt.column.dtype is DataType.DECIMAL
        assert stmt.default == Literal(0)

    def test_cluster(self):
        stmt = parse_statement("CLUSTER t USING rid")
        assert (stmt.table, stmt.column) == ("t", "rid")

    def test_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("EXPLODE TABLE t")

    def test_multiple_statements_rejected_by_parse_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1; SELECT 2")
