"""Tests for the SCI/CUR benchmark generators and dataset loading."""

import pytest

from repro.errors import WorkloadError
from repro.storage.engine import Database
from repro.workloads import (
    CurParameters,
    SciParameters,
    dataset,
    generate_cur,
    generate_sci,
    load_workload,
)
from repro.workloads.benchmark_graph import split_edit_counts
from repro.workloads.protein import (
    discover_interactions,
    generate_interactions,
    prune_low_confidence,
    rescore_coexpression,
)


class TestSciGenerator:
    def test_shape_is_tree(self, sci_tiny):
        parent_counts = [len(v.parents) for v in sci_tiny.versions]
        assert max(parent_counts[1:]) == 1
        assert parent_counts[0] == 0
        assert not sci_tiny.has_merges

    def test_membership_consistency(self, sci_tiny):
        by_vid = {v.vid: v for v in sci_tiny.versions}
        for version in sci_tiny.versions:
            inherited = version.members - set(version.new_rids)
            for parent in version.parents:
                pass
            if version.parents:
                parent_union = set()
                for parent in version.parents:
                    parent_union |= by_vid[parent].members
                assert inherited <= parent_union

    def test_new_rids_globally_fresh(self, sci_tiny):
        seen: set[int] = set()
        for version in sci_tiny.versions:
            assert not (set(version.new_rids) & seen)
            seen |= set(version.new_rids)

    def test_record_count_tracks_parameters(self):
        workload = generate_sci(
            SciParameters(num_versions=50, num_branches=5,
                          inserts_per_version=40, seed=1)
        )
        # |R| ~= V * I within generous tolerance (updates add, deletes few).
        assert 0.6 * 50 * 40 <= workload.num_records <= 1.4 * 50 * 40

    def test_deterministic_per_seed(self):
        params = SciParameters(20, 3, 10, seed=5)
        a = generate_sci(params)
        b = generate_sci(params)
        assert [v.members for v in a.versions] == [v.members for v in b.versions]
        different = generate_sci(SciParameters(20, 3, 10, seed=6))
        assert [v.members for v in a.versions] != [
            v.members for v in different.versions
        ]

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            SciParameters(num_versions=0, num_branches=0, inserts_per_version=1)
        with pytest.raises(WorkloadError):
            SciParameters(num_versions=5, num_branches=5, inserts_per_version=1)


class TestCurGenerator:
    def test_has_merges(self, cur_tiny):
        assert cur_tiny.has_merges

    def test_merge_resolves_conflicts_with_precedence(self, cur_tiny):
        """A merge keeps all of the primary parent's records and a subset
        of the secondary's (logical-key conflicts lose), matching the
        system's primary-key precedence rule."""
        by_vid = {v.vid: v for v in cur_tiny.versions}
        merges = [v for v in cur_tiny.versions if len(v.parents) == 2]
        assert merges
        for version in merges:
            primary, secondary = version.parents
            inherited = version.members - set(version.new_rids)
            assert by_vid[primary].members <= version.members
            assert inherited <= (by_vid[primary].members | by_vid[secondary].members)

    def test_loadable_into_cvd(self, cur_cvd, cur_tiny):
        assert cur_cvd.version_count == cur_tiny.num_versions
        assert cur_cvd.record_count == cur_tiny.num_records
        assert cur_cvd.bipartite_edge_count == cur_tiny.num_edges

    def test_deterministic(self):
        params = CurParameters(20, 4, 10, seed=9)
        assert [v.members for v in generate_cur(params).versions] == [
            v.members for v in generate_cur(params).versions
        ]


class TestSplitEditCounts:
    def test_partition_of_total(self):
        inserts, updates, deletes = split_edit_counts(100, 0.3, 0.02)
        assert inserts + updates == 100
        assert deletes == 2

    def test_zero_total(self):
        assert split_edit_counts(0, 0.5, 0.5) == (0, 0, 0)

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            split_edit_counts(-1, 0.1, 0.1)


class TestDatasets:
    def test_named_config_lookup(self):
        config = dataset("SCI_10K")
        assert config.paper_name == "SCI_1M"

    def test_unknown_dataset(self):
        with pytest.raises(WorkloadError):
            dataset("SCI_1B")

    def test_load_workload_roundtrip(self, sci_tiny):
        db = Database()
        cvd = load_workload(db, "w", sci_tiny)
        # Every version's contents match the generator's membership, with
        # payloads derived from the generator rids.
        version = sci_tiny.versions[-1]
        rows = cvd.model.fetch_version(version.vid)
        assert len(rows) == len(version.members)
        payloads = {row[1:] for row in rows}
        expected = {sci_tiny.payload(r) for r in version.members}
        assert payloads == expected

    def test_version_graph_mirrors_generator(self, sci_cvd, sci_tiny):
        for version in sci_tiny.versions:
            assert sci_cvd.version(version.vid).parents == version.parents


class TestProteinData:
    def test_unique_primary_keys(self):
        rows = generate_interactions(200, seed=3)
        keys = {(r[0], r[1]) for r in rows}
        assert len(keys) == 200

    def test_rescore_changes_only_coexpression(self):
        rows = generate_interactions(50)
        rescored = rescore_coexpression(rows, fraction=1.0)
        assert all(a[:4] == b[:4] for a, b in zip(rows, rescored))
        assert any(a[4] != b[4] for a, b in zip(rows, rescored))

    def test_prune_threshold(self):
        rows = [("a", "b", 0, 0, 10), ("c", "d", 100, 0, 0)]
        assert prune_low_confidence(rows, threshold=50) == [rows[1]]

    def test_discover_appends_unique(self):
        rows = generate_interactions(20)
        grown = discover_interactions(rows, 30)
        assert len(grown) == 50
        keys = {(r[0], r[1]) for r in grown}
        assert len(keys) == 50
