"""Unit tests for :mod:`repro.storage.columns` — dual-backed blocks.

A :class:`ColumnBlock` is either row-backed (late materialization: the
scan's live-row list, no transpose) or column-backed (computed vectors).
Every reading method must agree between the two layouts, laziness must be
real (nothing transposes until asked), and the reductions must be
bit-equivalent to the stdlib min/max with or without numpy.
"""

from __future__ import annotations

import pytest

from repro.storage.columns import (
    ColumnBlock,
    concat_columns,
    reduce_max,
    reduce_min,
    rows_iter,
)

ROWS = [(1, "a", None), (2, "b", 2.5), (3, None, 0.0)]


def _row_backed() -> ColumnBlock:
    return ColumnBlock.from_rows(list(ROWS), 3)


def _column_backed() -> ColumnBlock:
    return ColumnBlock([[1, 2, 3], ["a", "b", None], [None, 2.5, 0.0]], 3)


class TestDualBacking:
    def test_layouts_agree_on_every_reader(self):
        rb, cb = _row_backed(), _column_backed()
        assert rb.length == cb.length == 3
        assert rb.width == cb.width == 3
        assert rb.columns == cb.columns
        for position in range(3):
            assert rb.column(position) == cb.column(position)
        for i in range(3):
            assert rb.row(i) == cb.row(i) == ROWS[i]
        assert rb.to_rows() == cb.to_rows() == ROWS
        assert list(rows_iter(rb)) == list(rows_iter(cb)) == ROWS

    def test_from_rows_is_lazy(self):
        block = _row_backed()
        assert block._columns is None  # nothing transposed yet
        assert block.column(1) == ["a", "b", None]
        assert block._columns is None  # single column: still no transpose
        assert block.column(1) is block.column(1)  # cached vector
        assert block.columns == [[1, 2, 3], ["a", "b", None], [None, 2.5, 0.0]]
        assert block.columns is block.columns  # full set cached too

    def test_to_rows_returns_the_backing_list(self):
        rows = list(ROWS)
        block = ColumnBlock.from_rows(rows, 3)
        assert block.to_rows() is rows

    def test_take_preserves_backing_and_slots(self):
        rb = ColumnBlock.from_rows(list(ROWS), 3, slots=[10, 20, 30])
        taken = rb.take([2, 0])
        assert taken.rows == [ROWS[2], ROWS[0]]
        assert taken.slots == [30, 10]
        assert taken.length == 2 and taken.width == 3
        cb = _column_backed()
        assert cb.take([2, 0]).to_rows() == [ROWS[2], ROWS[0]]

    def test_concat_is_row_backed(self):
        merged = concat_columns([_row_backed(), _column_backed()], 3)
        assert merged.rows == ROWS + ROWS
        assert merged.length == 6

    def test_empty_blocks(self):
        rb = ColumnBlock.from_rows([], 3)
        assert rb.length == 0
        assert rb.columns == [[], [], []]
        assert rb.to_rows() == []
        cb = ColumnBlock([[], [], []], 0)
        assert cb.to_rows() == []
        assert list(rows_iter(cb)) == []

    def test_zero_width_rows(self):
        block = ColumnBlock([], 2)
        assert block.to_rows() == [(), ()]


class TestReductions:
    def test_matches_stdlib_for_ints(self):
        values = [(v * 7919) % 1000 for v in range(400)]  # >= numpy threshold
        assert reduce_min(values) == min(values)
        assert reduce_max(values) == max(values)

    def test_matches_stdlib_for_small_and_mixed_vectors(self):
        assert reduce_min([3, 1, 2]) == 1
        assert reduce_max([3.5, 1, 2]) == 3.5
        assert reduce_min(["b", "a"] * 200) == "a"

    def test_huge_ints_fall_back_to_stdlib(self):
        values = [1 << 70] * 300 + [5]
        assert reduce_min(values) == 5
        assert reduce_max(values) == 1 << 70

    def test_mixed_garbage_raises_like_stdlib(self):
        values = [1, "x"] * 200
        with pytest.raises(TypeError):
            reduce_min(values)
