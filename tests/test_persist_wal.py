"""Framing, torn-tail, and compaction behaviour of the write-ahead log."""

import pytest

from repro.errors import PersistenceError
from repro.persist.wal import MAGIC, WalRecord, WriteAheadLog, encode_frame


@pytest.fixture
def wal(tmp_path):
    return WriteAheadLog(tmp_path / "wal.log")


def records(wal):
    return list(wal.records())


class TestFraming:
    def test_append_read_round_trip(self, wal):
        wal.append(1, {"op": "a", "n": 1})
        wal.append(2, {"op": "b", "values": [1, 2.5, None, "x"]})
        wal.close()
        assert records(wal) == [
            WalRecord(1, {"op": "a", "n": 1}),
            WalRecord(2, {"op": "b", "values": [1, 2.5, None, "x"]}),
        ]

    def test_missing_file_reads_empty(self, wal):
        assert records(wal) == []
        assert wal.last_lsn() == 0

    def test_frame_starts_with_magic(self):
        frame = encode_frame(7, {"op": "x"})
        assert frame[:4] == MAGIC

    def test_unserializable_payload_raises(self, wal):
        with pytest.raises(PersistenceError):
            wal.append(1, {"op": "bad", "value": object()})

    def test_oversized_payload_refused_at_write_time(self, wal, monkeypatch):
        """The reader treats frames over MAX_PAYLOAD as corruption, so the
        writer must refuse them instead of fsync-acknowledging records
        recovery would truncate."""
        import repro.persist.wal as wal_module

        monkeypatch.setattr(wal_module, "MAX_PAYLOAD", 64)
        with pytest.raises(PersistenceError, match="frame limit"):
            wal.append(1, {"op": "big", "rows": list(range(100))})
        assert records(wal) == []  # nothing was written

    def test_last_lsn(self, wal):
        for lsn in (1, 2, 3):
            wal.append(lsn, {"op": "x"})
        wal.close()
        assert wal.last_lsn() == 3


class TestTornTail:
    def test_truncated_tail_is_dropped(self, wal):
        wal.append(1, {"op": "keep"})
        wal.append(2, {"op": "torn"})
        wal.close()
        data = wal.path.read_bytes()
        wal.path.write_bytes(data[:-3])  # tear the last payload
        assert [r.payload["op"] for r in records(wal)] == ["keep"]

    def test_truncated_header_is_dropped(self, wal):
        wal.append(1, {"op": "keep"})
        offset = wal.path.stat().st_size
        wal.append(2, {"op": "torn"})
        wal.close()
        data = wal.path.read_bytes()
        wal.path.write_bytes(data[: offset + 5])  # partial header only
        assert [r.lsn for r in records(wal)] == [1]

    def test_corrupt_payload_stops_replay(self, wal):
        wal.append(1, {"op": "keep"})
        offset = wal.path.stat().st_size
        wal.append(2, {"op": "flipped"})
        wal.append(3, {"op": "after"})
        wal.close()
        data = bytearray(wal.path.read_bytes())
        data[offset + 25] ^= 0xFF  # flip one payload byte of record 2
        wal.path.write_bytes(bytes(data))
        # Replay stops at the corrupt frame; record 3 is unreachable, which
        # is correct — we cannot trust anything past a broken frame.
        assert [r.lsn for r in records(wal)] == [1]

    def test_corrupt_header_lsn_is_detected(self, wal):
        """The CRC covers the lsn: header bit rot must not silently shift
        a record across the snapshot-lsn replay filter."""
        wal.append(1, {"op": "keep"})
        offset = wal.path.stat().st_size
        wal.append(2, {"op": "lsn-flipped"})
        wal.close()
        data = bytearray(wal.path.read_bytes())
        data[offset + 4] ^= 0xFF  # first byte of record 2's lsn field
        wal.path.write_bytes(bytes(data))
        assert [r.lsn for r in records(wal)] == [1]

    def test_garbage_magic_stops_replay(self, wal):
        wal.append(1, {"op": "keep"})
        wal.close()
        with open(wal.path, "ab") as handle:
            handle.write(b"\x00garbage-not-a-frame")
        assert [r.lsn for r in records(wal)] == [1]


class TestTornTailTruncation:
    def test_truncate_removes_only_the_torn_bytes(self, wal):
        wal.append(1, {"op": "keep"})
        good_size = wal.path.stat().st_size
        wal.append(2, {"op": "torn"})
        wal.close()
        torn = wal.path.read_bytes()[:-3]
        wal.path.write_bytes(torn)
        dropped = wal.truncate_torn_tail()
        assert dropped == len(torn) - good_size
        assert wal.path.stat().st_size == good_size
        assert wal.truncate_torn_tail() == 0  # idempotent on a clean log

    def test_append_after_truncation_is_reachable(self, wal):
        """Appending over an untruncated torn tail would strand the new
        record behind garbage — the original data-loss bug."""
        wal.append(1, {"op": "old"})
        wal.close()
        with open(wal.path, "ab") as handle:
            handle.write(b"OWL1\x99partial-frame")  # crash mid-append
        wal.truncate_torn_tail()
        wal.append(2, {"op": "new"})
        wal.close()
        assert [r.payload["op"] for r in records(wal)] == ["old", "new"]


class TestCompaction:
    def test_compact_drops_prefix(self, wal):
        for lsn in (1, 2, 3, 4):
            wal.append(lsn, {"op": f"op{lsn}"})
        kept = wal.compact(keep_after_lsn=2)
        assert kept == 2
        assert [r.lsn for r in records(wal)] == [3, 4]

    def test_compact_all_empties_file(self, wal):
        wal.append(1, {"op": "x"})
        wal.compact(keep_after_lsn=1)
        assert wal.path.stat().st_size == 0
        assert records(wal) == []

    def test_append_after_compact(self, wal):
        wal.append(1, {"op": "x"})
        wal.compact(keep_after_lsn=1)
        wal.append(2, {"op": "y"})
        wal.close()
        assert [r.lsn for r in records(wal)] == [2]
