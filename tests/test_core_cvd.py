"""Unit tests for CVD commit/checkout semantics (Sections 2.1-2.2)."""

import pytest

from repro.core.cvd import CVD
from repro.errors import (
    ConstraintViolationError,
    VersionNotFoundError,
)
from repro.storage.engine import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType

SCHEMA = TableSchema(
    [
        Column("key", DataType.TEXT),
        Column("value", DataType.INTEGER),
    ],
    ("key",),
)


@pytest.fixture
def cvd() -> CVD:
    cvd = CVD(Database(), "d", SCHEMA)
    cvd.init_version([("a", 1), ("b", 2), ("c", 3)])
    return cvd


class TestInit:
    def test_root_version(self, cvd):
        assert cvd.version_count == 1
        assert cvd.record_count == 3
        assert cvd.version(1).is_root
        assert len(cvd.member_rids(1)) == 3

    def test_init_enforces_pk_within_version(self):
        cvd = CVD(Database(), "d", SCHEMA)
        with pytest.raises(ConstraintViolationError):
            cvd.init_version([("a", 1), ("a", 2)])


class TestCommitRows:
    def test_unchanged_rows_keep_rids(self, cvd):
        rows = cvd.checkout_rows([1])
        vid = cvd.commit_rows((1,), rows)
        assert cvd.member_rids(vid) == cvd.member_rids(1)
        assert cvd.record_count == 3  # nothing new stored

    def test_modified_row_gets_fresh_rid(self, cvd):
        rows = [list(r) for r in cvd.checkout_rows([1])]
        rows[0][2] = 99  # change 'value' of the first record
        vid = cvd.commit_rows((1,), [tuple(r) for r in rows])
        assert cvd.record_count == 4
        changed = cvd.member_rids(vid) - cvd.member_rids(1)
        assert len(changed) == 1

    def test_inserted_row_null_rid(self, cvd):
        rows = cvd.checkout_rows([1]) + [(None, "d", 4)]
        vid = cvd.commit_rows((1,), rows)
        assert len(cvd.member_rids(vid)) == 4

    def test_deleted_row_simply_absent(self, cvd):
        rows = [r for r in cvd.checkout_rows([1]) if r[1] != "b"]
        vid = cvd.commit_rows((1,), rows)
        assert len(cvd.member_rids(vid)) == 2

    def test_no_cross_version_diff_rule(self, cvd):
        """A record deleted then re-added gets a NEW rid (Section 2.2)."""
        rows_v1 = cvd.checkout_rows([1])
        without_b = [r for r in rows_v1 if r[1] != "b"]
        v2 = cvd.commit_rows((1,), without_b)
        readded = cvd.checkout_rows([v2]) + [(None, "b", 2)]
        v3 = cvd.commit_rows((v2,), readded)
        b_rid_v1 = next(r[0] for r in rows_v1 if r[1] == "b")
        b_rid_v3 = next(r[0] for r in cvd.checkout_rows([v3]) if r[1] == "b")
        assert b_rid_v1 != b_rid_v3
        assert cvd.record_count == 4

    def test_value_match_commit_without_rids(self, cvd):
        """The CSV path: unchanged rows are recognized by value."""
        data_rows = [r[1:] for r in cvd.checkout_rows([1])]
        data_rows[1] = ("b", 20)
        vid = cvd.commit_rows((1,), data_rows, rows_have_rid=False)
        assert cvd.record_count == 4
        assert len(cvd.member_rids(vid) & cvd.member_rids(1)) == 2

    def test_duplicate_pk_rejected(self, cvd):
        rows = cvd.checkout_rows([1]) + [(None, "a", 99)]
        with pytest.raises(ConstraintViolationError):
            cvd.commit_rows((1,), rows)

    def test_duplicate_rid_rejected(self, cvd):
        rows = cvd.checkout_rows([1])
        with pytest.raises(ConstraintViolationError):
            cvd.commit_rows((1,), rows + [rows[0]])

    def test_edge_weight_recorded(self, cvd):
        rows = cvd.checkout_rows([1])[:2]
        vid = cvd.commit_rows((1,), rows)
        assert cvd.graph.edge_weight(1, vid) == 2


class TestIngestValidation:
    def test_stray_rid_rejected(self, cvd):
        with pytest.raises(ConstraintViolationError):
            cvd.ingest_version((1,), [999], {}, "bad")

    def test_unknown_parent_rejected(self, cvd):
        with pytest.raises(VersionNotFoundError):
            cvd.ingest_version((42,), [], {}, "bad")


class TestMultiVersionCheckout:
    def test_precedence_on_primary_key(self, cvd):
        # v2 rescores 'a'; v3 rescores 'a' differently.
        rows = [list(r) for r in cvd.checkout_rows([1])]
        rows[0][2] = 10
        v2 = cvd.commit_rows((1,), [tuple(r) for r in rows])
        rows = [list(r) for r in cvd.checkout_rows([1])]
        rows[0][2] = 20
        v3 = cvd.commit_rows((1,), [tuple(r) for r in rows])
        merged = cvd.checkout_rows([v2, v3])
        a_value = next(r[2] for r in merged if r[1] == "a")
        assert a_value == 10  # first-listed version wins
        merged_flipped = cvd.checkout_rows([v3, v2])
        assert next(r[2] for r in merged_flipped if r[1] == "a") == 20

    def test_merged_checkout_has_no_pk_duplicates(self, cvd):
        rows = [list(r) for r in cvd.checkout_rows([1])]
        rows[0][2] = 10
        v2 = cvd.commit_rows((1,), [tuple(r) for r in rows])
        merged = cvd.checkout_rows([v2, 1])
        keys = [r[1] for r in merged]
        assert len(keys) == len(set(keys)) == 3

    def test_checkout_into_table(self, cvd):
        cvd.checkout_into([1], "work")
        assert cvd.db.table("work").row_count == 3


class TestDiff:
    def test_diff_symmetric_content(self, cvd):
        rows = cvd.checkout_rows([1]) + [(None, "d", 4)]
        v2 = cvd.commit_rows((1,), rows)
        only_2, only_1 = cvd.diff(v2, 1)
        assert [r[1] for r in only_2] == ["d"]
        assert only_1 == []

    def test_diff_same_version_empty(self, cvd):
        assert cvd.diff(1, 1) == ([], [])


class TestMetadataTable:
    def test_metadata_row_per_version(self, cvd):
        rows = cvd.checkout_rows([1])
        cvd.commit_rows((1,), rows, message="again", commit_time=5)
        meta = cvd.db.query(
            f"SELECT vid, parents, num_records, msg FROM {cvd.metadata_table} "
            f"ORDER BY vid"
        )
        assert meta[0] == (1, (), 3, "initial version")
        assert meta[1] == (2, (1,), 3, "again")

    def test_counts(self, cvd):
        assert cvd.bipartite_edge_count == 3
        assert cvd.storage_bytes() > 0
