"""Property tests: RidSet bitmap semantics ≡ builtin set semantics.

Every algebraic operation the membership hot paths rely on is checked
against the reference ``set[int]`` implementation over random inputs —
empty, sparse, and dense — plus the serialization round-trips and the
range-encoded constructor the RLE model uses.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import decode_ranges, encode_ranges
from repro.storage import arrays
from repro.storage.ridset import RidSet

# Mix tight clusters (dense words) with far-flung rids (huge bitmap tails).
rid_lists = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=100_000, max_value=100_256),
    ),
    max_size=300,
)


class TestSetEquivalence:
    @given(rid_lists)
    @settings(max_examples=60, deadline=None)
    def test_construction_and_iteration(self, values):
        ridset = RidSet(values)
        reference = set(values)
        assert len(ridset) == len(reference)
        assert list(ridset) == sorted(reference)
        assert ridset == reference  # RidSet.__eq__ against a builtin set
        assert bool(ridset) == bool(reference)
        for probe in list(reference)[:10]:
            assert probe in ridset
        assert -1 not in ridset
        assert (max(reference) + 1 if reference else 7) in ridset or True

    @given(rid_lists, rid_lists)
    @settings(max_examples=60, deadline=None)
    def test_binary_algebra(self, left_values, right_values):
        left, right = RidSet(left_values), RidSet(right_values)
        ref_left, ref_right = set(left_values), set(right_values)
        assert left | right == ref_left | ref_right
        assert left & right == ref_left & ref_right
        assert left - right == ref_left - ref_right
        assert left ^ right == ref_left ^ ref_right
        assert left.isdisjoint(right) == ref_left.isdisjoint(ref_right)
        assert left.issubset(right) == ref_left.issubset(ref_right)
        assert left.issuperset(right) == ref_left.issuperset(ref_right)

    @given(rid_lists, rid_lists)
    @settings(max_examples=60, deadline=None)
    def test_counting_shortcuts(self, left_values, right_values):
        left, right = RidSet(left_values), RidSet(right_values)
        ref_left, ref_right = set(left_values), set(right_values)
        assert left.intersection_count(right) == len(ref_left & ref_right)
        assert left.union_count(right) == len(ref_left | ref_right)
        assert left.difference_count(right) == len(ref_left - ref_right)

    @given(rid_lists, rid_lists)
    @settings(max_examples=40, deadline=None)
    def test_mixed_operands(self, left_values, right_values):
        """Ops accept plain iterables / sets on either side."""
        left = RidSet(left_values)
        reference = set(left_values) | set(right_values)
        assert left | set(right_values) == reference
        assert left | tuple(right_values) == reference
        assert set(left_values) - RidSet(right_values) == set(
            left_values
        ) - set(right_values)

    @given(st.lists(rid_lists, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_union_all(self, groups):
        combined = RidSet.union_all(RidSet(g) for g in groups)
        reference: set[int] = set()
        for group in groups:
            reference |= set(group)
        assert combined == reference

    @given(rid_lists)
    @settings(max_examples=40, deadline=None)
    def test_min_max(self, values):
        ridset = RidSet(values)
        if not values:
            with pytest.raises(ValueError):
                ridset.min()
            with pytest.raises(ValueError):
                ridset.max()
        else:
            assert ridset.min() == min(values)
            assert ridset.max() == max(values)


class TestSerialization:
    @given(rid_lists)
    @settings(max_examples=40, deadline=None)
    def test_bytes_roundtrip(self, values):
        ridset = RidSet(values)
        assert RidSet.from_bytes(ridset.to_bytes()) == ridset
        if not values:
            assert ridset.to_bytes() == b""

    @given(rid_lists)
    @settings(max_examples=40, deadline=None)
    def test_pickle_roundtrip(self, values):
        ridset = RidSet(values)
        clone = pickle.loads(pickle.dumps(ridset))
        assert clone == ridset
        assert len(clone) == len(ridset)

    @given(rid_lists)
    @settings(max_examples=40, deadline=None)
    def test_to_array_is_wire_encoding(self, values):
        """Ascending int-array form matches sorted() of the reference set —
        what the snapshot writer emits."""
        ridset = RidSet(values)
        assert ridset.to_array() == tuple(sorted(set(values)))
        assert sorted(ridset) == sorted(set(values))

    @given(rid_lists)
    @settings(max_examples=40, deadline=None)
    def test_from_ranges_matches_decode(self, values):
        encoded = encode_ranges(values)
        assert RidSet.from_ranges(encoded) == set(decode_ranges(encoded))


class TestValidation:
    def test_negative_rid_rejected(self):
        with pytest.raises(ValueError):
            RidSet([3, -1])

    def test_odd_range_encoding_rejected(self):
        with pytest.raises(ValueError):
            RidSet.from_ranges([4])

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            RidSet.from_ranges([4, 0])

    def test_hashable(self):
        assert hash(RidSet([1, 2])) == hash(RidSet((2, 1)))
        assert {RidSet([1]): "x"}[RidSet([1])] == "x"


class TestArrayOperatorFastPaths:
    @given(rid_lists, rid_lists)
    @settings(max_examples=40, deadline=None)
    def test_contains_overlap_intersect(self, outer_values, inner_values):
        outer_set, inner_set = set(outer_values), set(inner_values)
        expected_contains = inner_set <= outer_set
        expected_overlap = bool(outer_set & inner_set)
        combos = [
            (RidSet(outer_values), RidSet(inner_values)),
            (RidSet(outer_values), tuple(inner_values)),
            (tuple(outer_values), RidSet(inner_values)),
        ]
        for outer, inner in combos:
            assert arrays.contains(outer, inner) == expected_contains
            assert arrays.contained_by(inner, outer) == expected_contains
            assert arrays.overlap(outer, inner) == expected_overlap
        assert set(
            arrays.intersect(RidSet(outer_values), RidSet(inner_values))
        ) == (outer_set & inner_set)

    def test_sql_containment_uses_bitmap_literal(self, db):
        """End to end: a <@ predicate over an int[] column still answers
        correctly once the executor bitmapizes the constant side."""
        from repro.storage.schema import Column, TableSchema
        from repro.storage.types import DataType

        db.create_table(
            "t",
            TableSchema(
                [
                    Column("vid", DataType.INTEGER),
                    Column("rlist", DataType.INT_ARRAY),
                ],
                ("vid",),
            ),
        )
        db.execute("INSERT INTO t VALUES (1, %s)", ((1, 2, 3, 50),))
        db.execute("INSERT INTO t VALUES (2, %s)", ((2, 4),))
        rows = db.query("SELECT vid FROM t WHERE ARRAY[2, 50] <@ rlist")
        assert [row[0] for row in rows] == [1]
        rows = db.query("SELECT vid FROM t WHERE rlist @> ARRAY[4]")
        assert [row[0] for row in rows] == [2]
        rows = db.query("SELECT vid FROM t WHERE rlist && ARRAY[50, 99]")
        assert [row[0] for row in rows] == [1]

    def test_huge_constants_skip_the_bitmap_path(self, db):
        """Constants past the bitmap rid bound must not allocate a
        max-rid-sized buffer — they fall back to the hash-probe path."""
        from repro.storage.schema import Column, TableSchema
        from repro.storage.types import DataType

        db.create_table(
            "t",
            TableSchema(
                [
                    Column("vid", DataType.INTEGER),
                    Column("rlist", DataType.INT_ARRAY),
                ],
                ("vid",),
            ),
        )
        huge = 10**15
        db.execute("INSERT INTO t VALUES (1, %s)", ((1, huge),))
        rows = db.query("SELECT vid FROM t WHERE rlist @> ARRAY[%s]", (huge,))
        assert [row[0] for row in rows] == [1]
        rows = db.query("SELECT vid FROM t WHERE ARRAY[%s] <@ rlist", (huge + 1,))
        assert rows == []
