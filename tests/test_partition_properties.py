"""Property-based tests of partitioning invariants on random version trees."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.bipartite import BipartiteGraph
from repro.partition.dag_reduction import tree_from_mappings
from repro.partition.delta_search import search_delta
from repro.partition.lyresplit import lyresplit
from repro.partition.migration import plan_intelligent, plan_naive


def random_history(num_versions: int, seed: int):
    """A random tree history with consistent membership sets.

    Returns (tree view, bipartite graph) built from the same membership,
    so tree statistics are exact.
    """
    rng = random.Random(seed)
    next_rid = [0]

    def fresh(count):
        rids = list(range(next_rid[0], next_rid[0] + count))
        next_rid[0] += count
        return rids

    members = {1: frozenset(fresh(rng.randint(3, 12)))}
    parents: dict[int, int | None] = {1: None}
    for vid in range(2, num_versions + 1):
        parent = rng.randint(1, vid - 1)
        base = list(members[parent])
        rng.shuffle(base)
        kept = base[: rng.randint(0, len(base))]
        added = fresh(rng.randint(1, 6))
        members[vid] = frozenset(kept) | frozenset(added)
        parents[vid] = parent
    num_records = {vid: len(m) for vid, m in members.items()}
    weights = {
        (parent, vid): len(members[vid] & members[parent])
        for vid, parent in parents.items()
        if parent is not None
    }
    tree = tree_from_mappings(parents, num_records, weights)
    return tree, BipartiteGraph(members)


tree_params = st.tuples(st.integers(min_value=2, max_value=30), st.integers(0, 10**6))


class TestLyreSplitProperties:
    @given(tree_params, st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_output_is_valid_partitioning(self, params, delta):
        tree, bip = random_history(*params)
        result = lyresplit(tree, delta)
        # Exactly covers the version set, no overlaps (Partitioning ctor
        # rejects overlaps), and costs are computable.
        assert result.partitioning.version_ids() == set(tree.parent)
        assert bip.storage_cost(result.partitioning) >= bip.num_records
        assert (bip.checkout_cost(result.partitioning) >= bip.min_checkout_cost - 1e-9)

    @given(tree_params, st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_theorem2_checkout_bound(self, params, delta):
        tree, bip = random_history(*params)
        result = lyresplit(tree, delta)
        assert (
            bip.checkout_cost(result.partitioning)
            <= (1 / delta) * bip.min_checkout_cost + 1e-9
        )

    @given(tree_params, st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_theorem2_storage_bound(self, params, delta):
        tree, bip = random_history(*params)
        result = lyresplit(tree, delta)
        bound = (1 + delta) ** result.levels * bip.num_records
        assert bip.storage_cost(result.partitioning) <= bound + 1e-9

    @given(tree_params)
    @settings(max_examples=30, deadline=None)
    def test_edge_rules_agree_on_validity(self, params):
        tree, bip = random_history(*params)
        for rule in ("balance", "min_weight"):
            result = lyresplit(tree, 0.5, edge_rule=rule)
            assert result.partitioning.version_ids() == set(tree.parent)


class TestDeltaSearchProperties:
    @given(tree_params, st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=40, deadline=None)
    def test_budget_always_respected(self, params, multiple):
        tree, bip = random_history(*params)
        gamma = multiple * bip.num_records
        result = search_delta(tree, gamma, bip)
        assert result.storage_cost <= gamma

    @given(tree_params)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_budget(self, params):
        tree, bip = random_history(*params)
        tight = search_delta(tree, 1.2 * bip.num_records, bip)
        loose = search_delta(tree, 3.0 * bip.num_records, bip)
        assert loose.checkout_cost <= tight.checkout_cost + 1e-9


class TestMigrationProperties:
    @given(tree_params, st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_intelligent_never_exceeds_naive(self, params, split_seed):
        tree, bip = random_history(*params)
        rng = random.Random(split_seed)
        vids = sorted(tree.parent)
        old_assignment = {vid: rng.randint(0, 2) for vid in vids}
        old_groups: dict[int, set[int]] = {}
        for vid, g in old_assignment.items():
            old_groups.setdefault(g, set()).add(vid)
        members = {vid: bip.records_of(vid) for vid in vids}
        old_rid_sets = [
            set().union(*(members[v] for v in group))
            for group in old_groups.values()
        ]
        new_partitioning = lyresplit(tree, 0.5).partitioning
        smart = plan_intelligent(old_rid_sets, new_partitioning, members)
        naive = plan_naive(new_partitioning, members)
        assert smart.modifications <= naive.modifications

    @given(tree_params)
    @settings(max_examples=30, deadline=None)
    def test_identity_migration_is_free(self, params):
        tree, bip = random_history(*params)
        partitioning = lyresplit(tree, 0.5).partitioning
        members = {vid: bip.records_of(vid) for vid in tree.parent}
        old_rid_sets = [
            set(bip.partition_records(group))
            for group in partitioning.groups
        ]
        plan = plan_intelligent(old_rid_sets, partitioning, members)
        assert plan.modifications == 0
        assert plan.num_scratch == 0


class TestWeightedProperties:
    @given(tree_params, st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_weighted_covers_all_versions(self, params, freq_seed):
        from repro.partition.weighted import weighted_lyresplit

        tree, bip = random_history(*params)
        rng = random.Random(freq_seed)
        freqs = {vid: rng.randint(1, 5) for vid in tree.parent}
        partitioning = weighted_lyresplit(tree, freqs, 0.5, bip)
        assert partitioning.version_ids() == set(tree.parent)
