"""Tests for the version-graph shortcut queries (Section 2.2)."""


class TestShortcuts:
    def test_ancestors_descendants(self, protein_cvd, orpheus):
        assert orpheus.ancestors("proteins", 4) == [1, 2, 3]
        assert orpheus.descendants("proteins", 1) == [2, 3, 4]
        assert orpheus.ancestors("proteins", 1) == []

    def test_parents_children(self, protein_cvd, orpheus):
        assert orpheus.parents_of("proteins", 4) == (2, 3)
        assert orpheus.children_of("proteins", 1) == [2, 3]

    def test_last_modified(self, protein_cvd, orpheus):
        vid, commit_time, message = orpheus.last_modified("proteins")
        assert vid == 4
        assert message == "merge"
        assert commit_time is not None

    def test_version_log_topological(self, protein_cvd, orpheus):
        log = orpheus.version_log("proteins")
        order = [entry["vid"] for entry in log]
        position = {vid: i for i, vid in enumerate(order)}
        for entry in log:
            for parent in entry["parents"]:
                assert position[parent] < position[entry["vid"]]
        assert log[0]["message"] == "initial version"

    def test_shortcuts_agree_with_metadata_sql(self, protein_cvd, orpheus):
        """The shortcuts are views over the SQL-visible metadata table."""
        rows = orpheus.run("SELECT vid, parents FROM proteins__meta ORDER BY vid").rows
        for vid, parents in rows:
            assert orpheus.parents_of("proteins", vid) == parents
