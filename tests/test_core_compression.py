"""Tests for range-encoded rlists (the Section 3.2 compression extension)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.compression import (
    compression_ratio,
    decode_ranges,
    encode_ranges,
    encoded_cardinality,
    iter_ranges,
)
from repro.errors import StorageError
from repro.storage.engine import Database
from repro.workloads import load_workload

rid_sets = st.sets(st.integers(min_value=0, max_value=500), max_size=80)


class TestEncoding:
    def test_example(self):
        assert encode_ranges([4, 5, 6, 7, 42, 43, 99]) == (4, 4, 42, 2, 99, 1)

    def test_empty(self):
        assert encode_ranges([]) == ()
        assert decode_ranges(()) == ()
        assert encoded_cardinality(()) == 0

    def test_single_run(self):
        assert encode_ranges(range(10, 20)) == (10, 10)

    def test_duplicates_and_order_normalized(self):
        assert encode_ranges([3, 1, 2, 2]) == (1, 3)

    @given(rid_sets)
    def test_roundtrip(self, rids):
        assert set(decode_ranges(encode_ranges(rids))) == rids

    @given(rid_sets)
    def test_cardinality_without_decoding(self, rids):
        assert encoded_cardinality(encode_ranges(rids)) == len(rids)

    @given(rid_sets)
    def test_iter_matches_decode(self, rids):
        encoded = encode_ranges(rids)
        assert tuple(iter_ranges(encoded)) == decode_ranges(encoded)

    def test_sequential_rids_compress_well(self):
        assert compression_ratio(list(range(1000))) == 500.0

    def test_malformed_encodings_rejected(self):
        with pytest.raises(StorageError):
            decode_ranges((1, 2, 3))
        with pytest.raises(StorageError):
            decode_ranges((1, 0))
        with pytest.raises(StorageError):
            encoded_cardinality((5,))


class TestUnnestRangesSQL:
    def test_expansion_in_select(self, db: Database):
        db.execute("CREATE TABLE vt (vid int PRIMARY KEY, rlist int[])")
        db.execute("INSERT INTO vt VALUES (1, %s)", (encode_ranges([5, 6, 9]),))
        rows = db.query("SELECT unnest_ranges(rlist) FROM vt WHERE vid = 1")
        assert rows == [(5,), (6,), (9,)]

    def test_checkout_join_equivalent_to_plain(self, db: Database):
        db.execute("CREATE TABLE d (rid int PRIMARY KEY, v int)")
        for rid in range(1, 21):
            db.execute("INSERT INTO d VALUES (%s, %s)", (rid, rid))
        db.execute("CREATE TABLE vt (vid int PRIMARY KEY, rlist int[])")
        rids = [2, 3, 4, 10, 17, 18]
        db.execute("INSERT INTO vt VALUES (1, %s)", (tuple(rids),))
        db.execute("INSERT INTO vt VALUES (2, %s)", (encode_ranges(rids),))
        plain = db.query(
            "SELECT d.rid, d.v FROM d, (SELECT unnest(rlist) AS r FROM vt "
            "WHERE vid = 1) AS t WHERE d.rid = t.r"
        )
        encoded = db.query(
            "SELECT d.rid, d.v FROM d, (SELECT unnest_ranges(rlist) AS r "
            "FROM vt WHERE vid = 2) AS t WHERE d.rid = t.r"
        )
        assert sorted(plain) == sorted(encoded)


class TestCompressedModel:
    """The registry-parametrized tests in test_core_datamodels already
    exercise correctness; these check the compression-specific wins."""

    def test_versioning_storage_smaller_than_plain(self, sci_tiny):
        plain = load_workload(Database(), "w", sci_tiny, "split_by_rlist")
        rle = load_workload(Database(), "w", sci_tiny, "split_by_rlist_rle")
        plain_vt = plain.db.table("w__versions").storage_bytes()
        rle_vt = rle.db.table("w__versions").storage_bytes()
        assert rle_vt < plain_vt

    def test_checkout_contents_identical(self, sci_tiny):
        plain = load_workload(Database(), "w", sci_tiny, "split_by_rlist")
        rle = load_workload(Database(), "w", sci_tiny, "split_by_rlist_rle")
        for vid in plain.graph.version_ids():
            assert sorted(plain.model.fetch_version(vid)) == sorted(
                rle.model.fetch_version(vid)
            )

    def test_translator_on_compressed_model(self, orpheus):
        orpheus.init(
            "c",
            [("x", "int")],
            rows=[(i,) for i in range(20)],
            model="split_by_rlist_rle",
        )
        assert orpheus.run("SELECT count(*) FROM VERSION 1 OF CVD c").scalar() == 20
        orpheus.checkout("c", 1, table_name="w")
        orpheus.db.execute("DELETE FROM w WHERE x >= 10")
        v2 = orpheus.commit("w")
        assert orpheus.run("SELECT count(*) FROM VERSION 2 OF CVD c").scalar() == 10
        assert orpheus.run(
            "SELECT vid, count(*) AS n FROM ALL VERSIONS OF CVD c AS av "
            "GROUP BY vid ORDER BY vid"
        ).rows == [(1, 20), (2, 10)]
