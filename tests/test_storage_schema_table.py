"""Unit tests for TableSchema, Table, and indexes."""

import pytest

from repro.errors import (
    CatalogError,
    ConstraintViolationError,
    DuplicateObjectError,
)
from repro.storage.index import OrderedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType


def make_schema(primary_key=("rid",)):
    return TableSchema(
        [
            Column("rid", DataType.INTEGER),
            Column("name", DataType.TEXT),
            Column("score", DataType.INTEGER),
        ],
        primary_key,
    )


class TestTableSchema:
    def test_positions_and_lookup(self):
        schema = make_schema()
        assert schema.position("name") == 1
        assert "score" in schema
        assert schema.column_names == ["rid", "name", "score"]

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema([Column("a", DataType.INTEGER)] * 2)

    def test_primary_key_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema([Column("a", DataType.INTEGER)], ("b",))

    def test_coerce_row_width_check(self):
        with pytest.raises(ConstraintViolationError):
            make_schema().coerce_row((1, "x"))

    def test_not_null_enforced(self):
        schema = TableSchema([Column("a", DataType.INTEGER, not_null=True)])
        with pytest.raises(ConstraintViolationError):
            schema.coerce_row((None,))

    def test_composite_key_extraction(self):
        schema = make_schema(primary_key=("name", "score"))
        assert schema.key_of((1, "x", 9)) == ("x", 9)

    def test_with_and_without_column(self):
        schema = make_schema()
        grown = schema.with_column(Column("extra", DataType.TEXT))
        assert grown.column_names[-1] == "extra"
        shrunk = grown.without_column("extra")
        assert shrunk.column_names == schema.column_names


class TestTable:
    def test_insert_and_scan(self):
        table = Table("t", make_schema())
        table.insert((1, "a", 10))
        table.insert((2, "b", 20))
        assert [row for _s, row in table.scan()] == [
            (1, "a", 10),
            (2, "b", 20),
        ]
        assert table.row_count == 2

    def test_primary_key_uniqueness(self):
        table = Table("t", make_schema())
        table.insert((1, "a", 10))
        with pytest.raises(ConstraintViolationError):
            table.insert((1, "b", 20))

    def test_delete_tombstones_and_indexes(self):
        table = Table("t", make_schema())
        s1 = table.insert((1, "a", 10))
        table.insert((2, "b", 20))
        assert table.delete_slots([s1]) == 1
        assert table.row_count == 1
        index = table.index_on(["rid"])
        assert index.lookup_key((1,)) == []
        # The freed key can be reused.
        table.insert((1, "c", 30))
        assert table.row_count == 2

    def test_update_slot_maintains_indexes(self):
        table = Table("t", make_schema())
        slot = table.insert((1, "a", 10))
        table.update_slot(slot, (5, "a", 10))
        index = table.index_on(["rid"])
        assert index.lookup_key((5,)) == [slot]
        assert index.lookup_key((1,)) == []

    def test_update_to_duplicate_key_rejected(self):
        table = Table("t", make_schema())
        table.insert((1, "a", 10))
        slot = table.insert((2, "b", 20))
        with pytest.raises(ConstraintViolationError):
            table.update_slot(slot, (1, "b", 20))

    def test_scan_counts_records(self):
        table = Table("t", make_schema())
        table.insert((1, "a", 10))
        table.insert((2, "b", 20))
        before = table.stats.records_scanned
        list(table.scan())
        assert table.stats.records_scanned - before == 2

    def test_probe_counts_probe_and_match(self):
        table = Table("t", make_schema())
        table.insert((1, "a", 10))
        index = table.index_on(["rid"])
        before_probes = table.stats.index_probes
        rows = table.probe(index, (1,))
        assert rows == [(1, "a", 10)]
        assert table.stats.index_probes - before_probes == 1

    def test_secondary_index_and_duplicate_name(self):
        table = Table("t", make_schema())
        table.insert((1, "a", 10))
        table.create_index("by_name", ["name"])
        with pytest.raises(DuplicateObjectError):
            table.create_index("by_name", ["name"])
        assert table.index_on(["name"]).lookup_key(("a",)) != []

    def test_recluster_sorts_heap(self):
        table = Table("t", make_schema(primary_key=()), enforce_primary_key=False)
        table.insert((3, "c", 1))
        table.insert((1, "a", 2))
        table.insert((2, "b", 3))
        table.recluster("rid")
        assert [row[0] for row in table.rows()] == [1, 2, 3]
        assert table.clustered_on == "rid"

    def test_alter_add_column_backfills(self):
        table = Table("t", make_schema())
        table.insert((1, "a", 10))
        table.alter_add_column(Column("flag", DataType.BOOLEAN), default=False)
        assert list(table.rows()) == [(1, "a", 10, False)]

    def test_alter_column_type_widens_values(self):
        table = Table("t", make_schema())
        table.insert((1, "a", 10))
        table.alter_column_type("score", DataType.DECIMAL)
        row = next(table.rows())
        assert row[2] == 10.0 and isinstance(row[2], float)

    def test_storage_bytes_counts_indexes(self):
        table = Table("t", make_schema())
        table.insert((1, "a", 10))
        with_index = table.storage_bytes(include_indexes=True)
        without = table.storage_bytes(include_indexes=False)
        assert with_index > without

    def test_truncate(self):
        table = Table("t", make_schema())
        table.insert((1, "a", 10))
        table.truncate()
        assert table.row_count == 0
        assert table.index_on(["rid"]).lookup_key((1,)) == []


class TestOrderedIndex:
    def test_range_scan(self):
        index = OrderedIndex("i", ("k",), (0,), unique=False)
        for value in [5, 1, 3, 9, 7]:
            index.insert((value,), value)
        assert list(index.range_scan((3,), (7,))) == [3, 5, 7]
        assert list(index.range_scan(None, (3,), include_high=False)) == [1]
        assert list(index.ordered_slots()) == [1, 3, 5, 7, 9]

    def test_delete_removes_key(self):
        index = OrderedIndex("i", ("k",), (0,), unique=False)
        index.insert((1,), 0)
        index.delete((1,), 0)
        assert list(index.ordered_slots()) == []
        assert index.entry_count() == 0


class TestIncrementalStorageBytes:
    """storage_bytes() is maintained incrementally; every mutation kind must
    keep it equal to the full-rescan reference implementation."""

    def check(self, table):
        assert table.storage_bytes() == table.storage_bytes_recomputed()
        assert table.storage_bytes(False) == table.storage_bytes_recomputed(False)

    def test_tracks_every_mutation_kind(self):
        table = Table("t", make_schema())
        self.check(table)
        slots = [table.insert((i, f"name{i}" * (i % 3), i * 7)) for i in range(20)]
        self.check(table)
        table.update_slot(slots[3], (3, "a much longer replacement name", 1))
        table.update_slot(slots[4], (4, None, None))
        self.check(table)
        table.delete_slots(slots[5:9])
        table.delete_slots(slots[5:9])  # tombstoned slots: no double charge
        self.check(table)
        table.create_index("by_name", ["name"])
        self.check(table)
        table.recluster("score")
        self.check(table)
        table.alter_add_column(Column("extra", DataType.TEXT), default="xyz")
        self.check(table)
        table.alter_column_type("score", DataType.DECIMAL)
        self.check(table)
        table.load_rows([(100, "bulk", 1, "e"), (101, None, 2, None)])
        self.check(table)
        table.drop_index("by_name")
        self.check(table)
        table.truncate()
        self.check(table)
        assert table.storage_bytes() == 0

    def test_pickle_roundtrip_without_counter_rebuilds_it(self):
        import pickle

        table = Table("t", make_schema())
        table.insert_many([(i, "n", i) for i in range(5)])
        state = table.__dict__.copy()
        del state["_data_bytes"]  # simulate a pre-incremental pickle
        clone = Table.__new__(Table)
        clone.__setstate__(pickle.loads(pickle.dumps(state)))
        assert clone.storage_bytes() == table.storage_bytes()
