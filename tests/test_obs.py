"""The observability layer: metrics, traces, and the live stats surface.

Three contracts matter most and get the closest scrutiny here:

* **Zero drift** — pulling IOStats/CacheStats into the registry must not
  change a single counter (the gated benchmark figures are byte-identical
  by construction); the hypothesis property at the bottom pins that.
* **Deterministic shape** — histogram snapshots have fixed bucket edges,
  so schema checks (and the CI stats-endpoint gate) can match exactly.
* **End-to-end propagation** — a client-supplied trace id rides a real
  ServeServer request down into the span stream.
"""

import json
import logging
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReadOnlyError, StoreLockedError
from repro.obs import (
    DURATION_BUCKETS,
    Histogram,
    JsonFormatter,
    MetricsRegistry,
    render_prometheus,
    trace,
)
from repro.serve import CheckoutCache, ServeManager, ServeServer, request
from repro.serve.server import error_code
from repro.storage.iostats import IOStats

from test_persist_readonly import build_store


# ----------------------------------------------------------------- metrics


class TestHistogram:
    def test_bucket_edges_are_le_semantics(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 7.0):
            hist.observe(value)
        snap = hist.snapshot_value()
        # Cumulative like Prometheus: an observation lands in the first
        # bucket whose edge is >= the value; 7.0 overflows into +Inf.
        assert snap["buckets"] == {"1.0": 2, "2.0": 3, "5.0": 3, "+Inf": 4}
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(10.0)
        assert snap["min"] == 0.5 and snap["max"] == 7.0

    def test_edges_sorted_and_validated(self):
        hist = Histogram("h", buckets=(5.0, 1.0, 2.0))
        assert hist.edges == (1.0, 2.0, 5.0)
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())

    def test_quantile_returns_bucket_edge(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 5.0))
        assert hist.quantile(0.5) is None  # empty
        for value in (0.5, 0.6, 1.5, 7.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0  # 2nd of 4 obs is in the le=1 bucket
        assert hist.quantile(0.75) == 2.0
        assert hist.quantile(1.0) == 7.0  # overflow bucket reports the max

    def test_default_buckets_cover_serve_latencies(self):
        assert DURATION_BUCKETS[0] <= 0.001 <= DURATION_BUCKETS[-1]
        assert tuple(sorted(DURATION_BUCKETS)) == DURATION_BUCKETS


class TestRegistry:
    def test_snapshot_nests_dotted_names(self):
        reg = MetricsRegistry()
        reg.counter("a.b.c").inc(3)
        reg.gauge("a.g").set(7)
        assert reg.snapshot() == {"a": {"b": {"c": 3}, "g": 7}}

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_since_matches_iostats_semantics(self):
        # The registry's since() has the same contract as IOStats.since:
        # counter-like leaves subtract, level-like leaves (gauges,
        # histogram min/max) report their current value.
        reg = MetricsRegistry()
        counter = reg.counter("ops")
        gauge = reg.gauge("in_flight")
        hist = reg.histogram("lat", buckets=(1.0,))
        counter.inc(5)
        gauge.set(2)
        hist.observe(0.5)
        earlier = reg.snapshot()
        counter.inc(3)
        gauge.set(9)
        hist.observe(2.0)
        delta = reg.since(earlier)
        assert delta["ops"] == 3
        assert delta["in_flight"] == 9  # a delta of a level has no meaning
        assert delta["lat"]["count"] == 1
        assert delta["lat"]["min"] == 0.5 and delta["lat"]["max"] == 2.0
        assert delta["lat"]["buckets"]["+Inf"] == 1

    def test_collector_pull_and_since(self):
        reg = MetricsRegistry()
        stats = IOStats()
        reg.register_collector("engine.io", stats.as_dict)
        stats.records_scanned += 10
        earlier = reg.snapshot()
        assert earlier["engine"]["io"]["records_scanned"] == 10
        stats.records_scanned += 7
        stats.index_probes += 2
        delta = reg.since(earlier)["engine"]["io"]
        expected = stats.since(IOStats(records_scanned=10))
        assert delta == dict(vars(expected))

    def test_collector_unregister_guards_callable(self):
        # A manager closed after a fresh one registered the same name must
        # not tear the fresh one down (last-wins registration).
        reg = MetricsRegistry()
        first = lambda: {"v": 1}  # noqa: E731
        second = lambda: {"v": 2}  # noqa: E731
        reg.register_collector("c", first)
        reg.register_collector("c", second)
        reg.unregister_collector("c", first)
        assert reg.snapshot() == {"c": {"v": 2}}
        reg.unregister_collector("c", second)
        assert reg.snapshot() == {}

    def test_failing_collector_does_not_break_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("ok").inc()

        def boom():
            raise RuntimeError("store closed mid-snapshot")

        reg.register_collector("dead", boom)
        snap = reg.snapshot()
        assert snap["ok"] == 1
        assert snap["dead"] == {"error": "collector failed"}

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests.ping").inc(2)
        reg.histogram("serve.request_seconds.ping", buckets=(1.0,)).observe(0.5)
        text = render_prometheus(reg.snapshot())
        assert "repro_serve_requests_ping 2" in text
        assert 'repro_serve_request_seconds_ping_bucket{le="1.0"} 1' in text
        assert "repro_serve_request_seconds_ping_count 1" in text


# ------------------------------------------------------- zero-drift shim


class TestIOStatsShimBitIdentity:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(sorted(vars(IOStats()))),
                st.integers(min_value=1, max_value=1_000),
            ),
            max_size=30,
        )
    )
    def test_snapshotting_never_perturbs_counters(self, ops):
        # The whole point of the pull-style shim: charging IOStats and
        # snapshotting the registry in any interleaving leaves the
        # counters bit-identical to an unobserved IOStats fed the same
        # increments — observation must not perturb the observed.
        observed = IOStats()
        control = IOStats()
        reg = MetricsRegistry()
        reg.register_collector("engine.io", observed.as_dict)
        for field, amount in ops:
            setattr(observed, field, getattr(observed, field) + amount)
            setattr(control, field, getattr(control, field) + amount)
            snap = reg.snapshot()["engine"]["io"]
            assert snap == dict(vars(control))
        assert vars(observed) == vars(control)


# ------------------------------------------------------------------ spans


class _CaptureHandler(logging.Handler):
    def __init__(self):
        super().__init__(level=logging.DEBUG)
        self.spans = []
        self._lock2 = threading.Lock()

    def emit(self, record):
        payload = getattr(record, "repro_span", None)
        if payload is not None:
            with self._lock2:
                self.spans.append(payload)


@pytest.fixture
def captured_spans():
    handler = _CaptureHandler()
    logger = logging.getLogger("repro.trace")
    old_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    try:
        yield handler.spans
    finally:
        logger.removeHandler(handler)
        logger.setLevel(old_level)


class TestTraceSpans:
    def test_nesting_shares_trace_id_and_links_parents(self, captured_spans):
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert trace.current_span() is inner
        assert trace.current_span() is None
        # Children close first, so they are emitted first.
        assert [payload["span"] for payload in captured_spans] == [
            "inner",
            "outer",
        ]
        assert captured_spans[0]["parent_id"] == captured_spans[1]["span_id"]

    def test_explicit_trace_id_pins_the_trace(self, captured_spans):
        with trace.span("request", trace_id="feedc0de", op="ping"):
            with trace.span("child"):
                assert trace.current_trace_id() == "feedc0de"
        assert all(p["trace_id"] == "feedc0de" for p in captured_spans)
        assert captured_spans[-1]["op"] == "ping"

    def test_unconfigured_spans_cost_nothing_visible(self):
        # No DEBUG handler: the span must still nest and time correctly.
        with trace.span("quiet") as quiet:
            assert quiet.trace_id

    def test_json_formatter_emits_parseable_span_lines(self, captured_spans):
        with trace.span("fmt", cvd="t"):
            pass
        record = logging.LogRecord(
            "repro.trace", logging.DEBUG, __file__, 1, "span fmt", (), None
        )
        record.repro_span = captured_spans[-1]
        line = json.loads(JsonFormatter().format(record))
        assert line["span"] == "fmt" and line["cvd"] == "t"
        assert line["level"] == "DEBUG" and "duration_ms" in line


# ----------------------------------------------------- serve stats surface


def _histogram_shaped(node: dict) -> bool:
    return (
        isinstance(node.get("buckets"), dict)
        and "+Inf" in node["buckets"]
        and node["count"] == node["buckets"]["+Inf"]
    )


class TestServeStatsEndpoint:
    @pytest.fixture
    def server(self, tmp_path):
        build_store(tmp_path / "s").close()
        manager = ServeManager(tmp_path / "s", readers=2)
        srv = ServeServer(manager).start()
        try:
            yield srv
        finally:
            srv.shutdown()

    def test_stats_op_serves_the_full_snapshot(self, server):
        host, port = server.address
        for _ in range(2):  # miss then hit
            assert request(host, port, {"op": "checkout", "cvd": "t", "vids": [1]})[
                "ok"
            ]
        reply = request(host, port, {"op": "stats"})
        assert reply["ok"]
        stats = reply["stats"]
        assert isinstance(stats["pid"], int)
        serve = stats["metrics"]["serve"]
        # Cache counters (the CacheStats shim) with the live entry count.
        assert serve["cache"]["hits"] >= 1 and serve["cache"]["misses"] >= 1
        assert serve["cache"]["entries"] >= 1
        # Per-op request counters and latency histograms.
        assert serve["requests"]["checkout"] >= 2
        assert _histogram_shaped(serve["request_seconds"]["checkout"])
        assert serve["request_seconds"]["checkout"]["count"] >= 2
        # Pool instrumentation and per-session engine I/O.
        assert _histogram_shaped(serve["pool"]["borrow_wait_seconds"])
        assert serve["pool"]["in_flight"] >= 0
        assert serve["session_0"]["io"]["records_scanned"] >= 0
        assert "records_scanned" in serve["writer"]["io"]
        # The snapshot must round-trip the wire as plain JSON (it already
        # did once to get here) and render as Prometheus text.
        text = render_prometheus(stats["metrics"])
        assert "repro_serve_cache_hits" in text
        assert "repro_serve_request_seconds_checkout_count" in text

    def test_trace_id_propagates_through_a_live_request(
        self, server, captured_spans
    ):
        host, port = server.address
        assert request(host, port, {"op": "ping", "trace": "abc123"})["pong"]
        # The span closes before the response line is flushed, so it is
        # in the stream by the time the client sees the reply.
        roots = [p for p in captured_spans if p["span"] == "serve.request"]
        assert any(p["trace_id"] == "abc123" and p["op"] == "ping" for p in roots)

    def test_errors_carry_stable_codes_and_are_counted(self, server):
        host, port = server.address
        reply = request(host, port, {"op": "frobnicate"})
        assert reply == {
            "ok": False,
            "error": "unknown op 'frobnicate'",
            "code": "unknown_op",
        }
        # Missing required field -> bad_request, connection stays usable.
        reply = request(host, port, {"op": "checkout", "vids": [1]})
        assert not reply["ok"] and reply["code"] == "bad_request"
        stats = request(host, port, {"op": "stats"})["stats"]["metrics"]
        assert stats["serve"]["errors"]["unknown_op"] >= 1
        assert stats["serve"]["errors"]["bad_request"] >= 1
        # Unknown ops bucket under one metric label; they cannot mint
        # unbounded counter names.
        assert "frobnicate" not in stats["serve"]["requests"]
        assert stats["serve"]["requests"]["unknown"] >= 1


class TestErrorCode:
    def test_codes_track_the_exception_hierarchy(self):
        assert error_code(ReadOnlyError("x")) == "read_only"
        assert error_code(StoreLockedError("x")) == "store_locked"
        assert error_code(ValueError("x")) == "value"


# --------------------------------------------------- cache stats torn reads


class TestCacheStatsConcurrency:
    def test_stats_dict_is_consistent_under_hammering(self):
        cache = CheckoutCache(capacity=32)
        stop = threading.Event()
        gets_done = [0] * 4

        def hammer(worker: int) -> None:
            n = 0
            while not stop.is_set():
                key = ("checkout", "t", (n % 64,), worker)
                if cache.get(key) is None:
                    cache.put(key, [n])
                gets_done[worker] += 1
                n += 1

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            last_total = 0
            for _ in range(200):
                snap = cache.stats_dict()
                assert set(snap) == {
                    "hits",
                    "misses",
                    "evictions",
                    "invalidated",
                    "entries",
                }
                assert all(
                    isinstance(v, int) and v >= 0 for v in snap.values()
                )
                assert snap["entries"] <= cache.capacity
                total = snap["hits"] + snap["misses"]
                # Counters only grow, and the atomic snapshot never tears
                # a hit/miss pair (a torn read could go backwards).
                assert total >= last_total
                last_total = total
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        snap = cache.stats_dict()
        assert snap["hits"] + snap["misses"] == sum(gets_done)
