"""Property tests for the lineage interval index (repro.core.lineage).

The contract is two-tier, like ``exec_mode``: the O(V+E) graph walks are
the bit-identical reference, the interval index is the fast path, and
hypothesis proves probe ≡ walk for ``ancestors``/``descendants``/
``on_branch``/``is_ancestor``/``path_between`` over generated DAGs with
merges — both when the index is built after the fact and when it is
maintained incrementally while the DAG grows (including the gap-exhaustion
path where labels go stale and rebuild lazily).  The persist suite checks
the label state survives snapshots and that pre-format-3 manifests open
and rebuild lazily; the SQL suite checks the ``VERSIONS ANCESTOR OF``
surface behaves identically under both parse/exec modes.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lineage import LineageIndex
from repro.core.orpheus import OrpheusDB
from repro.core.version import Version
from repro.core.version_graph import VersionGraph
from repro.errors import SQLSyntaxError, VersionNotFoundError
from repro.obs import metrics
from repro.persist.snapshot import FORMAT_VERSION
from repro.persist.store import Store
from repro.storage.engine import Database
from repro.storage.ridset import RidSet
from repro.workloads.protein import PROTEIN_COLUMNS, PROTEIN_PRIMARY_KEY

PAPER_ROWS = [
    ("ENSP273047", "ENSP261890", 0, 53, 0),
    ("ENSP273047", "ENSP235932", 0, 87, 0),
    ("ENSP300413", "ENSP274242", 426, 0, 164),
]


def make_version(vid: int, parents: tuple[int, ...]) -> Version:
    return Version(
        vid=vid,
        parents=parents,
        num_records=0,
        checkout_time=None,
        commit_time=None,
        message="",
        attribute_ids=(),
    )


def add(graph: VersionGraph, vid: int, parents) -> None:
    parents = tuple(parents)
    graph.add_version(make_version(vid, parents), {p: 1 for p in parents})


def lineage_counters() -> dict:
    return dict(metrics.registry().snapshot().get("lineage", {}))


#: Parent lists per vid: vid 1 is the root; each later vid draws 1-3
#: distinct earlier vids, first one becoming its spanning-tree parent.
@st.composite
def dag_histories(draw):
    size = draw(st.integers(min_value=1, max_value=24))
    history: list[tuple[int, list[int]]] = [(1, [])]
    for vid in range(2, size + 2):
        parents = draw(
            st.lists(
                st.sampled_from(range(1, vid)),
                min_size=1,
                max_size=min(3, vid - 1),
                unique=True,
            )
        )
        history.append((vid, parents))
    return history


def build(history) -> VersionGraph:
    graph = VersionGraph()
    for vid, parents in history:
        add(graph, vid, parents)
    return graph


def assert_probe_equals_walk(graph: VersionGraph) -> None:
    vids = graph.version_ids()
    for vid in vids:
        assert set(graph.ancestors(vid)) == graph.ancestors(vid, mode="walk")
        assert set(graph.descendants(vid)) == graph.descendants(vid, mode="walk")
        assert set(graph.on_branch(vid)) == graph.on_branch(vid, mode="walk")
    for a in vids:
        for b in vids:
            assert graph.is_ancestor(a, b) == graph.is_ancestor(a, b, mode="walk")
            assert set(graph.path_between(a, b)) == graph.path_between(
                a, b, mode="walk"
            )


class TestProbeWalkEquivalence:
    @given(dag_histories())
    @settings(max_examples=60, deadline=None)
    def test_index_built_after_the_fact(self, history):
        graph = build(history)
        assert_probe_equals_walk(graph)

    @given(dag_histories())
    @settings(max_examples=40, deadline=None)
    def test_index_maintained_incrementally(self, history):
        graph = VersionGraph()
        for vid, parents in history:
            add(graph, vid, parents)
            if vid == 1:
                graph.lineage  # build at size 1; everything after is incremental
            # Interval probes mid-growth keep labels live (and force the
            # in-place gap inserts, not just one final rebuild).
            assert set(graph.descendants(1)) == graph.descendants(1, mode="walk")
        assert_probe_equals_walk(graph)

    @given(dag_histories())
    @settings(max_examples=30, deadline=None)
    def test_gap_exhaustion_rebuilds_lazily(self, history):
        graph = VersionGraph()
        # Near-zero slack: in-place inserts exhaust almost immediately, so
        # this exercises stale-marking and lazy rebuilds constantly.
        graph._lineage = LineageIndex(graph, spacing_bits=3)
        for vid, parents in history:
            add(graph, vid, parents)
            assert set(graph.descendants(vid)) == graph.descendants(
                vid, mode="walk"
            )
        assert_probe_equals_walk(graph)

    def test_deep_chain_survives_recursion_limits(self):
        graph = VersionGraph()
        add(graph, 1, [])
        for vid in range(2, 3001):
            add(graph, vid, [vid - 1])
        assert len(graph.descendants(1)) == 2999
        assert len(graph.ancestors(3000)) == 2999
        assert graph.depth(3000) == 3000

    def test_probes_return_ridsets(self):
        graph = build([(1, []), (2, [1]), (3, [1]), (4, [2, 3])])
        ancestors = graph.ancestors(4)
        assert isinstance(ancestors, RidSet)
        # Vid sets intersect directly with other bitmaps.
        assert list(ancestors & RidSet([2, 99])) == [2]
        assert sorted(graph.on_branch(4)) == [1, 2, 3, 4]
        assert graph.version_ids() and isinstance(graph.descendants(1), RidSet)

    def test_unknown_vid_raises(self):
        graph = build([(1, [])])
        with pytest.raises(VersionNotFoundError):
            graph.ancestors(99)
        with pytest.raises(VersionNotFoundError):
            graph.is_ancestor(1, 99)


class TestCounters:
    def test_probe_and_visit_counters_charge(self):
        graph = build([(1, []), (2, [1]), (3, [1]), (4, [2, 3])])
        before = lineage_counters()
        graph.ancestors(4)
        graph.descendants(1)
        after = lineage_counters()
        assert after.get("probes", 0) - before.get("probes", 0) == 2
        assert after.get("nodes_visited", 0) > before.get("nodes_visited", 0)
        # The descendants probe built labels once, lazily.
        assert after.get("rebuilds", 0) - before.get("rebuilds", 0) == 1

    def test_ancestor_visits_stay_logarithmic_on_chains(self):
        graph = VersionGraph()
        add(graph, 1, [])
        for vid in range(2, 402):
            add(graph, vid, [vid - 1])
        before = lineage_counters()
        graph.ancestors(401)
        after = lineage_counters()
        # A merge-free chain has an empty closure: one index node visited,
        # however long the lineage — the walk touches all 400.
        assert after["nodes_visited"] - before.get("nodes_visited", 0) == 1

    def test_probes_charge_no_engine_io(self):
        orpheus = OrpheusDB()
        orpheus.init(
            "p", PROTEIN_COLUMNS, rows=PAPER_ROWS, primary_key=PROTEIN_PRIMARY_KEY
        )
        orpheus.db.reset_stats()
        graph = orpheus.cvd("p").graph
        graph.ancestors(1)
        graph.descendants(1)
        stats = orpheus.db.stats
        # Zero logical-I/O drift: lineage probes never touch the engine's
        # gated counters (records scanned, index probes, blocks).
        assert stats.records_scanned == 0
        assert stats.index_probes == 0
        assert stats.blocks_scanned == 0


class TestLabelState:
    def test_export_import_round_trip(self):
        history = [(1, []), (2, [1]), (3, [1]), (4, [2, 3]), (5, [4]), (6, [4, 2])]
        graph = build(history)
        graph.descendants(1)  # build labels
        state = graph.lineage_export()
        assert state is not None

        twin = build(history)
        assert twin.lineage_import(state)
        assert twin.lineage_status() == "fresh"
        before = lineage_counters()
        assert_probe_equals_walk(twin)
        # Adopted labels serve every interval probe without a rebuild.
        assert lineage_counters().get("rebuilds", 0) == before.get("rebuilds", 0)

    def test_corrupt_state_is_rejected_not_fatal(self):
        history = [(1, []), (2, [1]), (3, [1]), (4, [2, 3])]
        graph = build(history)
        graph.descendants(1)
        state = graph.lineage_export()
        # Swap two vids: intervals no longer match the spanning tree.
        state["labels"][1][0], state["labels"][2][0] = (
            state["labels"][2][0],
            state["labels"][1][0],
        )
        twin = build(history)
        assert not twin.lineage_import(state)
        assert twin.lineage_status() == "stale"
        assert_probe_equals_walk(twin)  # rebuilds lazily, stays correct

    def test_export_is_none_until_labels_exist(self):
        graph = build([(1, []), (2, [1])])
        assert graph.lineage_export() is None  # index never built
        graph.ancestors(2)  # bitmap-only probe: still no labels
        assert graph.lineage_export() is None
        graph.descendants(1)
        assert graph.lineage_export() is not None


def _build_store_history(orpheus) -> None:
    orpheus.init(
        "p", PROTEIN_COLUMNS, rows=PAPER_ROWS, primary_key=PROTEIN_PRIMARY_KEY
    )
    orpheus.checkout("p", 1, table_name="w2")
    orpheus.run("UPDATE w2 SET coexpression = 83 WHERE protein1 = 'ENSP273047'")
    orpheus.commit("w2", message="edit")
    orpheus.checkout("p", 1, table_name="w3")
    orpheus.run("DELETE FROM w3 WHERE protein1 = 'ENSP300413'")
    orpheus.commit("w3", message="prune")
    orpheus.checkout("p", [2, 3], table_name="w4")
    orpheus.commit("w4", message="merge")
    orpheus.checkout("p", 4, table_name="w5")
    orpheus.commit("w5", message="tip")


class TestPersistRoundTrip:
    def test_labels_survive_checkpoint_and_reopen(self, tmp_path):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        _build_store_history(store.orpheus)
        graph = store.orpheus.cvd("p").graph
        expected = {vid: graph.descendants(vid, mode="walk") for vid in (1, 2, 4)}
        graph.descendants(1)  # build labels so the manifest has state
        assert graph.lineage_status() == "fresh"
        store.checkpoint()
        store.close()

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        rgraph = recovered.orpheus.cvd("p").graph
        assert rgraph.lineage_status() == "fresh"
        before = lineage_counters()
        for vid, walk in expected.items():
            assert set(rgraph.descendants(vid)) == walk
        assert lineage_counters().get("rebuilds", 0) == before.get("rebuilds", 0)
        # The index keeps tracking post-restore commits.
        recovered.orpheus.checkout("p", 5, table_name="w6")
        recovered.orpheus.commit("w6", message="post-restore")
        assert set(rgraph.descendants(5)) == rgraph.descendants(5, mode="walk")
        recovered.close()

    def test_old_manifest_opens_and_rebuilds_lazily(self, tmp_path):
        store = Store.open(tmp_path / "store", checkpoint_interval=0)
        _build_store_history(store.orpheus)
        store.orpheus.cvd("p").graph.descendants(1)
        store.checkpoint()
        store.close()

        # Rewrite the active snapshot as a pre-lineage manifest: format 2,
        # no per-CVD lineage key.
        store_path = tmp_path / "store"
        current = json.loads((store_path / "CURRENT").read_text(encoding="utf-8"))[
            "snapshot"
        ]
        manifest_path = store_path / "snapshots" / current / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert manifest["format"] == FORMAT_VERSION
        manifest["format"] = 2
        for cvd_state in manifest["orpheus"]["cvds"]:
            cvd_state.pop("lineage", None)
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

        recovered = Store.open(tmp_path / "store", checkpoint_interval=0)
        rgraph = recovered.orpheus.cvd("p").graph
        assert rgraph.lineage_status() == "stale"
        before = lineage_counters()
        assert set(rgraph.descendants(1)) == rgraph.descendants(1, mode="walk")
        assert (
            lineage_counters()["rebuilds"] == before.get("rebuilds", 0) + 1
        )
        assert rgraph.lineage_status() == "fresh"
        recovered.close()


def _sql_orpheus(exec_mode: str) -> OrpheusDB:
    orpheus = OrpheusDB(Database(exec_mode=exec_mode))
    _build_store_history(orpheus)
    return orpheus


class TestLineageSQL:
    @pytest.mark.parametrize("exec_mode", ["compiled", "interpreted"])
    def test_ancestor_axis(self, exec_mode):
        orpheus = _sql_orpheus(exec_mode)
        rows = orpheus.run(
            "SELECT vid FROM VERSIONS ANCESTOR OF 5 OF CVD p ORDER BY vid"
        ).rows
        assert rows == [(1,), (2,), (3,), (4,)]

    @pytest.mark.parametrize("exec_mode", ["compiled", "interpreted"])
    def test_descendant_axis(self, exec_mode):
        orpheus = _sql_orpheus(exec_mode)
        rows = orpheus.run(
            "SELECT vid, num_records FROM VERSIONS DESCENDANT OF 2 OF CVD p "
            "ORDER BY vid"
        ).rows
        assert [vid for vid, _ in rows] == [4, 5]

    @pytest.mark.parametrize("exec_mode", ["compiled", "interpreted"])
    def test_empty_axis_yields_no_rows(self, exec_mode):
        orpheus = _sql_orpheus(exec_mode)
        rows = orpheus.run("SELECT vid FROM VERSIONS ANCESTOR OF 1 OF CVD p").rows
        assert rows == []

    @pytest.mark.parametrize("exec_mode", ["compiled", "interpreted"])
    def test_composes_with_predicates_and_aliases(self, exec_mode):
        orpheus = _sql_orpheus(exec_mode)
        rows = orpheus.run(
            "SELECT lineage.vid FROM VERSIONS ANCESTOR OF 5 OF CVD p AS lineage "
            "WHERE lineage.vid > 2 ORDER BY lineage.vid"
        ).rows
        assert rows == [(3,), (4,)]

    @pytest.mark.parametrize("exec_mode", ["compiled", "interpreted"])
    def test_malformed_tail_rejected_identically(self, exec_mode):
        orpheus = _sql_orpheus(exec_mode)
        with pytest.raises(
            SQLSyntaxError, match="expected OF CVD after VERSIONS ANCESTOR OF 4"
        ):
            orpheus.run("SELECT * FROM VERSIONS ANCESTOR OF 4 WHERE vid > 1")
        with pytest.raises(
            SQLSyntaxError, match="expected CVD after VERSIONS DESCENDANT OF 4 OF"
        ):
            orpheus.run("SELECT * FROM VERSIONS DESCENDANT OF 4 OF TABLE p")

    @pytest.mark.parametrize("exec_mode", ["compiled", "interpreted"])
    def test_unknown_vid_rejected(self, exec_mode):
        orpheus = _sql_orpheus(exec_mode)
        with pytest.raises(VersionNotFoundError):
            orpheus.run("SELECT * FROM VERSIONS ANCESTOR OF 99 OF CVD p")

    @pytest.mark.parametrize("exec_mode", ["compiled", "interpreted"])
    def test_words_stay_usable_as_identifiers(self, exec_mode):
        # versions/ancestor/descendant are non-reserved: without the full
        # construct prefix they are ordinary identifiers (the OVER rule).
        orpheus = OrpheusDB(Database(exec_mode=exec_mode))
        orpheus.run("CREATE TABLE versions (ancestor INTEGER, descendant INTEGER)")
        orpheus.run("INSERT INTO versions VALUES (1, 2), (3, 4)")
        rows = orpheus.run(
            "SELECT v.ancestor FROM versions v WHERE v.descendant = 4"
        ).rows
        assert rows == [(3,)]
        rows = orpheus.run(
            "SELECT descendant FROM versions ORDER BY ancestor"
        ).rows
        assert rows == [(2,), (4,)]


class TestFacadeShortcuts:
    def test_on_branch_is_ancestor_version_path(self):
        orpheus = OrpheusDB()
        _build_store_history(orpheus)
        assert orpheus.on_branch("p", 4) == [1, 2, 3, 4]
        assert orpheus.is_ancestor("p", 1, 5)
        assert not orpheus.is_ancestor("p", 5, 1)
        assert orpheus.version_path("p", 2, 5) == [2, 4, 5]
        assert orpheus.version_path("p", 5, 2) == []
        # Multi-version diff along the probe-discovered path.
        path = orpheus.version_path("p", 1, 5)
        for earlier, later in zip(path, path[1:]):
            plus, minus = orpheus.diff("p", later, earlier)
            assert isinstance(plus, list) and isinstance(minus, list)
